//! The TCP sender state machine.
//!
//! [`TcpSender`] is a pure state machine: feed it ACKs and timer expiries,
//! get back [`TcpAction`]s (segments to transmit, timers to arm, completion
//! notice). It implements the loss-recovery behaviour of ns-2's Reno TCP,
//! which is the sender the paper's simulations use:
//!
//! * slow start / congestion avoidance driven by a pluggable
//!   [`CongestionControl`];
//! * fast retransmit on the third duplicate ACK, with window inflation
//!   during fast recovery;
//! * classic-Reno recovery exit on any new ACK, or NewReno partial-ACK
//!   retransmission, depending on the algorithm's
//!   [`RecoveryStyle`];
//! * go-back-N retransmission after a timeout (ns-2 semantics: `t_seqno_`
//!   falls back to the highest ACK), with exponential RTO backoff;
//! * RTT sampling from timestamp echoes, so Karn ambiguity never arises;
//! * an opt-in ECN path (`cfg.ecn`): ECE-carrying ACKs run the DCTCP α
//!   estimator and trigger the algorithm's
//!   [`CongestionControl::on_ecn_mark`] at most once per window of data,
//!   setting CWR on the next outgoing segment.
//!
//! Per-flow state lives in a [`FlowTable`]: the
//! sender itself is a thin view (configuration + a table slot), so
//! multi-flow workloads sharing one table keep every hot field in dense
//! parallel arrays (see [`crate::table`]).

use crate::cc::{CcState, CongestionControl, RecoveryStyle};
use crate::config::TcpConfig;
use crate::rtt::RttEstimator;
use crate::table::{FlowSlot, FlowTable, SharedFlowTable};
use simcore::{SimDuration, SimTime};

/// What the sender wants done, in order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TcpAction {
    /// Transmit the data segment with this (unwrapped) sequence number.
    Send {
        /// Unwrapped segment number.
        seq: u64,
        /// True if this segment was transmitted before.
        retransmit: bool,
        /// True if this is the flow's final segment.
        fin: bool,
    },
    /// (Re-)arm the retransmission timer for `delay`; older generations are
    /// stale and must be ignored when they fire.
    ArmRto {
        /// Timer delay.
        delay: SimDuration,
        /// Generation to match in [`TcpSender::on_rto`].
        gen: u64,
    },
    /// Every segment of a finite flow has been acknowledged.
    Completed,
}

/// Coarse sender state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderState {
    /// Normal operation (slow start or congestion avoidance).
    Open,
    /// Fast recovery after a triple duplicate ACK.
    FastRecovery,
}

/// Sender-side counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Data segments handed to the network (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Fast-retransmit events.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// ACKs processed.
    pub acks: u64,
    /// Duplicate ACKs seen.
    pub dupacks: u64,
}

/// The TCP sender: configuration plus a [`FlowTable`] slot holding all
/// mutable per-flow state.
#[derive(Debug)]
pub struct TcpSender {
    cfg: TcpConfig,
    cc: Box<dyn CongestionControl>,
    /// Total flow length in segments; `None` = infinite (long-lived) flow.
    flow_size: Option<u64>,
    table: SharedFlowTable,
    slot: FlowSlot,
    /// Test-only log of (seq, retransmit) for every Send action.
    #[cfg(any(test, feature = "send-log"))]
    pub send_log: Vec<(u64, bool)>,
}

impl TcpSender {
    /// Creates a sender for a flow of `flow_size` segments (`None` =
    /// infinite) using the given congestion control. The sender gets a
    /// private one-slot [`FlowTable`]; multi-flow workloads should share
    /// one table via [`TcpSender::in_table`].
    pub fn new(cfg: TcpConfig, cc: Box<dyn CongestionControl>, flow_size: Option<u64>) -> Self {
        Self::in_table(&SharedFlowTable::new(), cfg, cc, flow_size)
    }

    /// Creates a sender whose state lives in `table` (one slot is
    /// allocated). Every sender of a simulation should share one table so
    /// the hot per-flow fields are contiguous.
    pub fn in_table(
        table: &SharedFlowTable,
        cfg: TcpConfig,
        cc: Box<dyn CongestionControl>,
        flow_size: Option<u64>,
    ) -> Self {
        if let Some(n) = flow_size {
            assert!(n > 0, "flow must have at least one segment");
        }
        let slot = table.alloc(&cfg);
        TcpSender {
            cfg,
            cc,
            flow_size,
            table: table.clone(),
            slot,
            #[cfg(any(test, feature = "send-log"))]
            send_log: Vec::new(),
        }
    }

    /// Begins transmission: emits the initial window and arms the RTO.
    /// Actions are appended to `out` (the agent reuses one scratch buffer
    /// across events, so the per-event hot path performs no allocation).
    pub fn start_into(&mut self, _now: SimTime, out: &mut Vec<TcpAction>) {
        let table = self.table.clone();
        let mut tb = table.table_mut();
        let t = &mut *tb;
        let i = self.slot.index();
        assert!(!t.cold[i].started, "start() called twice");
        t.cold[i].started = true;
        self.fill_window(t, out);
        self.arm_rto(t, out);
    }

    /// Convenience wrapper over [`TcpSender::start_into`] returning a fresh
    /// vector (tests and diagnostics).
    pub fn start(&mut self, now: SimTime) -> Vec<TcpAction> {
        let mut out = Vec::new();
        self.start_into(now, &mut out);
        out
    }

    fn window_in(&self, t: &FlowTable) -> u64 {
        let i = self.slot.index();
        let w = (t.ccs[i].cwnd + t.inflation[i]).min(self.cfg.max_window as f64);
        w.floor().max(1.0) as u64
    }

    fn flight_in(&self, t: &FlowTable) -> u64 {
        let i = self.slot.index();
        t.next_seq[i] - t.snd_una[i]
    }

    /// Effective send window in whole segments: `min(cwnd + inflation,
    /// max_window)`.
    pub fn window(&self) -> u64 {
        self.window_in(&self.table.table())
    }

    /// Outstanding (sent, unacked) segments.
    pub fn flight(&self) -> u64 {
        self.flight_in(&self.table.table())
    }

    /// The congestion window (segments, fractional).
    pub fn cwnd(&self) -> f64 {
        self.table.table().ccs[self.slot.index()].cwnd
    }

    /// The slow-start threshold (segments).
    pub fn ssthresh(&self) -> f64 {
        self.table.table().ccs[self.slot.index()].ssthresh
    }

    /// The congestion-control state pair (diagnostics/tests).
    pub fn ccs(&self) -> CcState {
        self.table.table().ccs[self.slot.index()]
    }

    /// Current coarse state.
    pub fn state(&self) -> SenderState {
        if self.table.table().recovery[self.slot.index()] {
            SenderState::FastRecovery
        } else {
            SenderState::Open
        }
    }

    /// True once every segment of a finite flow is acknowledged.
    pub fn is_completed(&self) -> bool {
        self.table.table().cold[self.slot.index()].completed
    }

    /// Sender counters.
    pub fn stats(&self) -> SenderStats {
        self.table.table().cold[self.slot.index()].stats
    }

    /// Oldest unacknowledged segment.
    pub fn snd_una(&self) -> u64 {
        self.table.table().snd_una[self.slot.index()]
    }

    /// Next new segment to be sent.
    pub fn next_seq(&self) -> u64 {
        self.table.table().next_seq[self.slot.index()]
    }

    /// The current RTO timer generation (tests).
    pub fn rto_gen(&self) -> u64 {
        self.table.table().rto_gen[self.slot.index()]
    }

    /// A snapshot of the RTT estimator (for diagnostics).
    pub fn rtt(&self) -> RttEstimator {
        self.table.table().rtt[self.slot.index()].clone()
    }

    /// The congestion-control algorithm name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    fn is_fin(&self, seq: u64) -> bool {
        self.flow_size.map(|n| seq + 1 == n).unwrap_or(false)
    }

    /// Sends as much new data as the window permits.
    fn fill_window(&mut self, t: &mut FlowTable, out: &mut Vec<TcpAction>) {
        let i = self.slot.index();
        let limit = self.flow_size.unwrap_or(u64::MAX);
        while self.flight_in(t) < self.window_in(t) && t.next_seq[i] < limit {
            let seq = t.next_seq[i];
            // A segment below high_water was transmitted before the loss
            // event that set high_water (go-back-N after timeout).
            let retransmit = seq < t.high_water[i];
            out.push(TcpAction::Send {
                seq,
                retransmit,
                fin: self.is_fin(seq),
            });
            #[cfg(any(test, feature = "send-log"))]
            self.send_log.push((seq, retransmit));
            t.cold[i].stats.segments_sent += 1;
            if retransmit {
                t.cold[i].stats.retransmits += 1;
            }
            t.next_seq[i] += 1;
        }
    }

    fn arm_rto(&mut self, t: &mut FlowTable, out: &mut Vec<TcpAction>) {
        let i = self.slot.index();
        if self.flight_in(t) == 0 || t.cold[i].completed {
            // Nothing outstanding: let any pending timer go stale.
            t.rto_gen[i] += 1;
            return;
        }
        t.rto_gen[i] += 1;
        out.push(TcpAction::ArmRto {
            delay: t.rtt[i].rto(),
            gen: t.rto_gen[i],
        });
    }

    /// Processes a cumulative ACK. `ts_echo` is the send timestamp echoed by
    /// the receiver (for RTT sampling). Actions are appended to `out`.
    /// Equivalent to [`TcpSender::on_ack_ecn_into`] with `ece = false`.
    // simlint: hot-path — once per ACK
    pub fn on_ack_into(
        &mut self,
        now: SimTime,
        ack: u64,
        ts_echo: SimTime,
        out: &mut Vec<TcpAction>,
    ) {
        self.on_ack_ecn_into(now, ack, ts_echo, false, out)
    }

    /// Processes a cumulative ACK carrying an ECN-Echo indication. On
    /// ECN-enabled connections (`cfg.ecn`) this runs the DCTCP α
    /// bookkeeping and, gated to once per window of data, the algorithm's
    /// [`CongestionControl::on_ecn_mark`] response; with ECN off the `ece`
    /// flag is ignored entirely and behaviour is bit-identical to
    /// [`TcpSender::on_ack_into`].
    // simlint: hot-path — once per ACK
    pub fn on_ack_ecn_into(
        &mut self,
        now: SimTime,
        ack: u64,
        ts_echo: SimTime,
        ece: bool,
        out: &mut Vec<TcpAction>,
    ) {
        let table = self.table.clone();
        let mut tb = table.table_mut();
        let t = &mut *tb;
        let i = self.slot.index();
        if t.cold[i].completed || !t.cold[i].started {
            return;
        }
        // An ACK for data we never sent is bogus (e.g. a stale ACK from a
        // previous connection on a reused flow id): drop it, as real TCP
        // drops segments outside the window. After a timeout rewind,
        // next_seq sits below data that is still legitimately in flight, so
        // the bound is the highest sequence ever sent.
        if ack > t.next_seq[i].max(t.high_water[i]) {
            return;
        }
        t.cold[i].stats.acks += 1;

        // Timestamp echo gives an unambiguous RTT sample on every ACK.
        if ts_echo <= now {
            t.rtt[i].sample(now.since(ts_echo));
        }

        if self.cfg.ecn {
            // DCTCP α estimator (RFC 8257 §3.3): count acked vs marked
            // segments, fold the fraction into the EWMA once per window of
            // data. Runs for every algorithm on ECN flows (cheap, and the
            // estimate is simply unused unless on_ecn_mark consumes it).
            // simlint: hot-path — once per ACK on ECN-enabled flows
            let newly = ack.saturating_sub(t.snd_una[i]);
            if newly > 0 {
                t.ecn_acked[i] += newly;
                if ece {
                    t.ecn_marked[i] += newly;
                }
                if ack >= t.ecn_obs_end[i] {
                    let frac = t.ecn_marked[i] as f64 / t.ecn_acked[i] as f64;
                    let g = crate::cc::Dctcp::G;
                    t.ecn_alpha[i] = (1.0 - g) * t.ecn_alpha[i] + g * frac;
                    t.ecn_acked[i] = 0;
                    t.ecn_marked[i] = 0;
                    t.ecn_obs_end[i] = t.next_seq[i];
                }
            }
            // ECE response, once per window of data (mirrors the
            // high_water gate on loss recovery): suppressed while already
            // in recovery — the loss reduction covers this window — and
            // until everything outstanding at the last reduction is acked.
            if ece && !t.recovery[i] && ack >= t.ecn_cwr_end[i] {
                let flight = self.flight_in(t) as f64;
                let alpha = t.ecn_alpha[i];
                self.cc.on_ecn_mark(&mut t.ccs[i], flight, alpha);
                t.ecn_cwr_end[i] = t.next_seq[i];
                t.cwr_pending[i] = true;
            }
        }

        if ack > t.snd_una[i] {
            let newly = ack - t.snd_una[i];
            t.snd_una[i] = ack;
            // next_seq can only fall behind snd_una after a timeout reset
            // (go-back-N) when an original in-flight segment is acked.
            if t.next_seq[i] < t.snd_una[i] {
                t.next_seq[i] = t.snd_una[i];
            }

            if t.recovery[i] {
                let full = ack >= t.high_water[i];
                let newreno = self.cc.style() == RecoveryStyle::NewReno;
                if full || !newreno {
                    // Exit recovery: deflate to ssthresh.
                    t.recovery[i] = false;
                    t.inflation[i] = 0.0;
                    t.dupacks[i] = 0;
                    t.ccs[i].cwnd = t.ccs[i].cwnd.min(t.ccs[i].ssthresh);
                } else {
                    // NewReno partial ACK: retransmit the next hole,
                    // deflate inflation by the data acked, stay in
                    // recovery.
                    t.inflation[i] = (t.inflation[i] - newly as f64).max(0.0) + 1.0;
                    out.push(TcpAction::Send {
                        seq: t.snd_una[i],
                        retransmit: true,
                        fin: self.is_fin(t.snd_una[i]),
                    });
                    #[cfg(any(test, feature = "send-log"))]
                    self.send_log.push((t.snd_una[i], true));
                    t.cold[i].stats.segments_sent += 1;
                    t.cold[i].stats.retransmits += 1;
                }
            } else {
                t.dupacks[i] = 0;
                for _ in 0..newly {
                    self.cc.on_ack_segment(&mut t.ccs[i]);
                }
                // rwnd clamp (ns-2 does the same): there is no point
                // growing cwnd beyond what the receiver window allows.
                let cap = self.cfg.max_window as f64;
                if t.ccs[i].cwnd > cap {
                    t.ccs[i].cwnd = cap;
                }
            }

            // Completion check before sending more.
            if let Some(n) = self.flow_size {
                if t.snd_una[i] >= n {
                    t.cold[i].completed = true;
                    t.rto_gen[i] += 1; // kill pending timer
                    out.push(TcpAction::Completed);
                    return;
                }
            }

            self.fill_window(t, out);
            self.arm_rto(t, out);
        } else if ack == t.snd_una[i] && self.flight_in(t) > 0 {
            // Duplicate ACK.
            t.cold[i].stats.dupacks += 1;
            if !t.recovery[i] {
                t.dupacks[i] += 1;
                if t.dupacks[i] == self.cfg.dupack_threshold {
                    // Fast retransmit + enter fast recovery. high_water
                    // only moves forward: after a timeout rewind,
                    // next_seq may sit below data that was already sent
                    // once, and those segments must stay classified as
                    // retransmissions (RFC 6582 also keeps `recover` at
                    // the highest sequence ever sent).
                    t.cold[i].stats.fast_retransmits += 1;
                    t.high_water[i] = t.high_water[i].max(t.next_seq[i]);
                    let flight = self.flight_in(t) as f64;
                    self.cc.on_fast_retransmit(&mut t.ccs[i], flight);
                    t.inflation[i] = self.cfg.dupack_threshold as f64;
                    t.recovery[i] = true;
                    out.push(TcpAction::Send {
                        seq: t.snd_una[i],
                        retransmit: true,
                        fin: self.is_fin(t.snd_una[i]),
                    });
                    t.cold[i].stats.segments_sent += 1;
                    t.cold[i].stats.retransmits += 1;
                    self.arm_rto(t, out);
                }
            } else {
                // Window inflation lets new data trickle out.
                t.inflation[i] += 1.0;
                self.fill_window(t, out);
            }
        }
        // Old ACK (< snd_una): ignore.
    }

    /// Convenience wrapper over [`TcpSender::on_ack_into`] returning a fresh
    /// vector (tests and diagnostics).
    pub fn on_ack(&mut self, now: SimTime, ack: u64, ts_echo: SimTime) -> Vec<TcpAction> {
        let mut out = Vec::new();
        self.on_ack_into(now, ack, ts_echo, &mut out);
        out
    }

    /// Consumes the pending CWR flag: true exactly once after each
    /// ECE-triggered window reduction. The agent stamps the next outgoing
    /// data segment with CWR so the receiver can stop echoing.
    pub fn take_cwr(&mut self) -> bool {
        std::mem::take(&mut self.table.table_mut().cwr_pending[self.slot.index()])
    }

    /// The DCTCP mark-fraction estimate α (diagnostics/tests; 1.0 until
    /// the first observation window completes).
    pub fn ecn_alpha(&self) -> f64 {
        self.table.table().ecn_alpha[self.slot.index()]
    }

    /// Processes a retransmission-timeout expiry for timer generation `gen`.
    /// Stale generations are ignored. Actions are appended to `out`.
    // simlint: hot-path — once per retransmission timeout
    pub fn on_rto_into(&mut self, _now: SimTime, gen: u64, out: &mut Vec<TcpAction>) {
        let table = self.table.clone();
        let mut tb = table.table_mut();
        let t = &mut *tb;
        let i = self.slot.index();
        if gen != t.rto_gen[i]
            || t.cold[i].completed
            || !t.cold[i].started
            || self.flight_in(t) == 0
        {
            return;
        }
        t.cold[i].stats.timeouts += 1;
        t.rtt[i].backoff();
        let flight = self.flight_in(t) as f64;
        self.cc.on_timeout(&mut t.ccs[i], flight);
        t.recovery[i] = false;
        t.dupacks[i] = 0;
        t.inflation[i] = 0.0;
        // Go-back-N (ns-2 semantics): rewind to the oldest unacked segment;
        // everything beyond it will be resent as the window re-opens.
        t.high_water[i] = t.high_water[i].max(t.next_seq[i]);
        t.next_seq[i] = t.snd_una[i];
        self.fill_window(t, out);
        self.arm_rto(t, out);
    }

    /// Convenience wrapper over [`TcpSender::on_rto_into`] returning a fresh
    /// vector (tests and diagnostics).
    pub fn on_rto(&mut self, now: SimTime, gen: u64) -> Vec<TcpAction> {
        let mut out = Vec::new();
        self.on_rto_into(now, gen, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{FixedWindow, NewReno, Reno};

    fn sender(flow: Option<u64>) -> TcpSender {
        TcpSender::new(TcpConfig::default(), Box::new(Reno), flow)
    }

    fn sends(actions: &[TcpAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                TcpAction::Send { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn start_sends_initial_window() {
        let mut s = sender(None);
        let a = s.start(t(0));
        assert_eq!(sends(&a), vec![0, 1]); // initial cwnd = 2
        assert!(a.iter().any(|x| matches!(x, TcpAction::ArmRto { .. })));
        assert_eq!(s.flight(), 2);
    }

    #[test]
    fn slow_start_growth() {
        let mut s = sender(None);
        s.start(t(0));
        // ACK both initial segments: cwnd 2 -> 4, two new sends each.
        let a = s.on_ack(t(100), 1, t(0));
        assert_eq!(sends(&a), vec![2, 3]);
        let a = s.on_ack(t(101), 2, t(1));
        assert_eq!(sends(&a), vec![4, 5]);
        assert_eq!(s.cwnd(), 4.0);
    }

    #[test]
    fn cumulative_ack_covers_multiple_segments() {
        let mut s = sender(None);
        s.start(t(0));
        let a = s.on_ack(t(100), 2, t(0)); // acks both at once
        assert_eq!(s.snd_una(), 2);
        assert_eq!(s.cwnd(), 4.0);
        assert_eq!(sends(&a).len(), 4);
    }

    #[test]
    fn fast_retransmit_on_third_dupack() {
        let mut s = sender(None);
        s.start(t(0));
        // Grow the window a little.
        s.on_ack(t(10), 2, t(0)); // cwnd 4, sent 2..6
        s.on_ack(t(20), 4, t(10)); // cwnd 6, sent 6..10
        assert_eq!(s.cwnd(), 6.0);
        assert_eq!(s.next_seq(), 10);
        // Segment 4 lost: three dup ACKs for 4.
        assert!(sends(&s.on_ack(t(30), 4, t(20))).is_empty());
        assert!(sends(&s.on_ack(t(31), 4, t(20))).is_empty());
        let a = s.on_ack(t(32), 4, t(20));
        // Third dupack: retransmit 4, halve window.
        assert_eq!(sends(&a), vec![4]);
        assert_eq!(s.state(), SenderState::FastRecovery);
        assert_eq!(s.ssthresh(), 3.0); // flight was 6
        assert_eq!(s.stats().fast_retransmits, 1);
        assert_eq!(s.stats().retransmits, 1);
    }

    #[test]
    fn recovery_inflation_sends_new_data() {
        let mut s = sender(None);
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        s.on_ack(t(20), 4, t(10)); // cwnd 6, flight 6 (segs 4..10)
        for i in 0..3 {
            s.on_ack(t(30 + i), 4, t(20));
        }
        assert_eq!(s.state(), SenderState::FastRecovery);
        // More dupacks inflate the window: cwnd(3) + inflation grows.
        let mut new_sent = 0;
        for i in 0..6 {
            new_sent += sends(&s.on_ack(t(40 + i), 4, t(20))).len();
        }
        assert!(new_sent > 0, "inflation should release new segments");
    }

    #[test]
    fn reno_exits_recovery_on_new_ack() {
        let mut s = sender(None);
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        s.on_ack(t(20), 4, t(10));
        for i in 0..3 {
            s.on_ack(t(30 + i), 4, t(20));
        }
        assert_eq!(s.state(), SenderState::FastRecovery);
        let a = s.on_ack(t(50), 10, t(30));
        assert_eq!(s.state(), SenderState::Open);
        assert_eq!(s.cwnd(), 3.0); // deflated to ssthresh
        assert!(!sends(&a).is_empty()); // window reopens
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = TcpSender::new(TcpConfig::default(), Box::new(NewReno), None);
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        s.on_ack(t(20), 4, t(10)); // flight = 6 (4..10), cwnd 6
        for i in 0..3 {
            s.on_ack(t(30 + i), 4, t(20));
        }
        assert_eq!(s.state(), SenderState::FastRecovery);
        assert_eq!(s.next_seq(), 10);
        // Partial ACK to 6 (<10): retransmit 6, stay in recovery. The
        // deflated-then-reinflated window may also release new data after
        // the retransmission (RFC 6582 §3.2 step 5 permits this).
        let a = s.on_ack(t(50), 6, t(30));
        assert_eq!(s.state(), SenderState::FastRecovery);
        assert_eq!(sends(&a)[0], 6);
        // Full ACK to 10: exit.
        let _ = s.on_ack(t(60), 10, t(50));
        assert_eq!(s.state(), SenderState::Open);
    }

    #[test]
    fn timeout_goes_back_n() {
        let mut s = sender(None);
        let a0 = s.start(t(0));
        let gen = a0
            .iter()
            .find_map(|a| match a {
                TcpAction::ArmRto { gen, .. } => Some(*gen),
                _ => None,
            })
            .unwrap();
        // No ACKs arrive; the timer fires.
        let a = s.on_rto(t(1000), gen);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(sends(&a), vec![0]); // go-back-N restart
        let retx = a
            .iter()
            .any(|x| matches!(x, TcpAction::Send { retransmit: true, .. }));
        assert!(retx);
        assert_eq!(s.stats().timeouts, 1);
        assert!(s.rtt().backoff_count() > 0);
    }

    #[test]
    fn stale_rto_generation_ignored() {
        let mut s = sender(None);
        s.start(t(0));
        // ACK re-arms the timer with a new generation.
        let a = s.on_ack(t(100), 1, t(0));
        let new_gen = a
            .iter()
            .find_map(|x| match x {
                TcpAction::ArmRto { gen, .. } => Some(*gen),
                _ => None,
            })
            .unwrap();
        // The original timer (gen new_gen - 1) fires late: ignored.
        assert!(s.on_rto(t(1000), new_gen - 1).is_empty());
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn finite_flow_completes() {
        let mut s = sender(Some(3));
        let a = s.start(t(0));
        assert_eq!(sends(&a), vec![0, 1]);
        let a = s.on_ack(t(10), 1, t(0));
        // Window grows, segment 2 (the FIN) goes out.
        assert!(a.iter().any(|x| matches!(
            x,
            TcpAction::Send {
                seq: 2,
                fin: true,
                ..
            }
        )));
        s.on_ack(t(20), 2, t(10));
        let a = s.on_ack(t(30), 3, t(20));
        assert!(a.contains(&TcpAction::Completed));
        assert!(s.is_completed());
        // Further input is ignored.
        assert!(s.on_ack(t(40), 3, t(30)).is_empty());
    }

    #[test]
    fn single_segment_flow() {
        let mut s = sender(Some(1));
        let a = s.start(t(0));
        assert_eq!(
            sends(&a),
            vec![0],
            "window 2 but only 1 segment available"
        );
        assert!(a.iter().any(|x| matches!(
            x,
            TcpAction::Send { fin: true, .. }
        )));
        let a = s.on_ack(t(10), 1, t(0));
        assert!(a.contains(&TcpAction::Completed));
    }

    #[test]
    fn receiver_window_caps_flight() {
        let cfg = TcpConfig::default().with_max_window(4);
        let mut s = TcpSender::new(cfg, Box::new(Reno), None);
        s.start(t(0));
        let mut acked = 0u64;
        for i in 0..20 {
            acked += 1;
            s.on_ack(t(10 * (i + 1)), acked, t(10 * i));
            assert!(s.flight() <= 4, "flight = {}", s.flight());
        }
        assert!(s.cwnd() <= 4.0);
    }

    #[test]
    fn fixed_window_never_reacts() {
        let mut s = TcpSender::new(
            TcpConfig::default(),
            Box::new(FixedWindow::new(8.0)),
            None,
        );
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        assert_eq!(s.cwnd(), 8.0);
        // Trigger a timeout.
        let gen = s.rto_gen();
        s.on_rto(t(5000), gen);
        assert_eq!(s.cwnd(), 8.0);
    }

    #[test]
    fn rtt_sampled_from_ts_echo() {
        let mut s = sender(None);
        s.start(t(0));
        s.on_ack(t(80), 1, t(0));
        let srtt = s.rtt().srtt().unwrap();
        assert_eq!(srtt, SimDuration::from_millis(80));
    }

    #[test]
    fn bogus_future_ack_ignored() {
        let mut s = sender(None);
        s.start(t(0));
        // ACK for data never sent (stale ACK from a reused flow id).
        let a = s.on_ack(t(10), 1000, t(0));
        assert!(a.is_empty());
        assert_eq!(s.snd_una(), 0);
        assert_eq!(s.stats().acks, 0);
    }

    #[test]
    fn old_ack_is_ignored() {
        let mut s = sender(None);
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        let before = s.stats();
        let snd_una = s.snd_una();
        let a = s.on_ack(t(20), 1, t(10)); // stale cumulative ack
        assert!(sends(&a).is_empty());
        assert_eq!(s.snd_una(), snd_una);
        assert_eq!(s.stats().dupacks, before.dupacks);
    }

    #[test]
    fn dupacks_without_outstanding_data_ignored() {
        let mut s = sender(Some(2));
        s.start(t(0));
        s.on_ack(t(10), 2, t(0)); // completes
        assert!(s.is_completed());
    }

    #[test]
    fn congestion_avoidance_after_recovery() {
        let mut s = sender(None);
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        s.on_ack(t(20), 4, t(10));
        for i in 0..3 {
            s.on_ack(t(30 + i), 4, t(20));
        }
        s.on_ack(t(50), 10, t(30)); // exit recovery, cwnd = ssthresh = 3
        assert_eq!(s.cwnd(), 3.0);
        assert!(!s.ccs().in_slow_start());
        // Next RTT of ACKs: congestion avoidance, +1/cwnd each.
        let cwnd0 = s.cwnd();
        s.on_ack(t(60), 11, t(50));
        assert!(s.cwnd() > cwnd0 && s.cwnd() < cwnd0 + 1.0);
    }

    #[test]
    fn shared_table_keeps_flows_independent() {
        // Two senders in one table must not interfere: identical inputs
        // produce identical trajectories regardless of neighbours.
        let table = SharedFlowTable::new();
        let cfg = TcpConfig::default();
        let mut a = TcpSender::in_table(&table, cfg, Box::new(Reno), None);
        let mut b = TcpSender::in_table(&table, cfg, Box::new(Reno), None);
        let mut solo = TcpSender::new(cfg, Box::new(Reno), None);
        for s in [&mut a, &mut b, &mut solo] {
            s.start(t(0));
            s.on_ack(t(10), 2, t(0));
            s.on_ack(t(20), 4, t(10));
        }
        // Perturb b only.
        for i in 0..3 {
            b.on_ack(t(30 + i), 4, t(20));
        }
        assert_eq!(b.state(), SenderState::FastRecovery);
        assert_eq!(a.state(), SenderState::Open);
        assert_eq!(a.cwnd(), solo.cwnd());
        assert_eq!(a.snd_una(), solo.snd_una());
        assert_eq!(a.stats(), solo.stats());
        assert_eq!(table.len(), 2);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::cc::{NewReno, Reno};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sends(actions: &[TcpAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                TcpAction::Send { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    /// Grow a sender to a known state: cwnd 6, segments 0..10 in flight
    /// acked through 4.
    fn grown(cc: Box<dyn CongestionControl>) -> TcpSender {
        let mut s = TcpSender::new(TcpConfig::default(), cc, None);
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        s.on_ack(t(20), 4, t(10));
        s
    }

    #[test]
    fn cwnd_never_below_one() {
        let mut s = grown(Box::new(Reno));
        // Repeated timeouts with backoff.
        for i in 0..10 {
            let gen = s.rto_gen();
            s.on_rto(t(1000 * (i + 1)), gen);
            assert!(s.cwnd() >= 1.0);
            assert!(s.window() >= 1);
        }
    }

    #[test]
    fn newreno_multi_loss_recovers_without_timeout() {
        // Segments 4 and 6 lost out of 4..10 in flight. NewReno should
        // retransmit both via partial ACKs within one recovery episode.
        let mut s = grown(Box::new(NewReno));
        assert_eq!(s.next_seq(), 10);
        // Dupacks for 4 (caused by 5, 7, 8, 9 arriving; 6 also lost).
        s.on_ack(t(30), 4, t(20));
        s.on_ack(t(31), 4, t(20));
        let a = s.on_ack(t(32), 4, t(20));
        assert_eq!(sends(&a)[0], 4, "fast retransmit of first hole");
        assert_eq!(s.state(), SenderState::FastRecovery);
        // Retransmitted 4 arrives; cumulative ack moves to 6 (5 was
        // received earlier): partial ack -> retransmit 6 immediately.
        let a = s.on_ack(t(50), 6, t(32));
        assert!(sends(&a).contains(&6), "partial ack retransmits next hole");
        assert_eq!(s.state(), SenderState::FastRecovery);
        // Retransmitted 6 arrives; everything through 10 is acked: full ack.
        let _ = s.on_ack(t(70), 10, t(50));
        assert_eq!(s.state(), SenderState::Open);
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn reno_multi_loss_needs_second_fast_retransmit_or_timeout() {
        // Same double loss under classic Reno: the first new ACK ends
        // recovery; the second hole needs its own dupacks or an RTO.
        let mut s = grown(Box::new(Reno));
        s.on_ack(t(30), 4, t(20));
        s.on_ack(t(31), 4, t(20));
        s.on_ack(t(32), 4, t(20));
        assert_eq!(s.state(), SenderState::FastRecovery);
        let _ = s.on_ack(t(50), 6, t(32)); // partial new ACK exits recovery
        assert_eq!(s.state(), SenderState::Open);
        // Window deflated twice as the classic Reno multi-loss penalty
        // begins: cwnd == ssthresh after exit.
        assert_eq!(s.cwnd(), s.ssthresh());
    }

    #[test]
    fn window_one_sender_still_progresses() {
        let cfg = TcpConfig::default()
            .with_max_window(1)
            .with_initial_cwnd(1.0);
        let mut s = TcpSender::new(cfg, Box::new(Reno), Some(5));
        let a = s.start(t(0));
        assert_eq!(sends(&a), vec![0]);
        for i in 0..5 {
            let a = s.on_ack(t(10 * (i + 1)), i + 1, t(10 * i));
            if i < 4 {
                assert_eq!(sends(&a), vec![i + 1]);
            } else {
                assert!(a.contains(&TcpAction::Completed));
            }
        }
    }

    #[test]
    fn duplicate_completed_never_emitted() {
        let mut s = TcpSender::new(TcpConfig::default(), Box::new(Reno), Some(2));
        s.start(t(0));
        let a = s.on_ack(t(10), 2, t(0));
        assert_eq!(
            a.iter()
                .filter(|x| matches!(x, TcpAction::Completed))
                .count(),
            1
        );
        assert!(s.on_ack(t(20), 2, t(10)).is_empty());
        assert!(s.on_rto(t(5000), 1).is_empty());
    }

    #[test]
    fn fast_retransmit_does_not_refire_on_more_dupacks() {
        let mut s = grown(Box::new(Reno));
        for i in 0..3 {
            s.on_ack(t(30 + i), 4, t(20));
        }
        let retx_after_entry = s.stats().retransmits;
        // Ten more dupacks: only inflation, no second retransmit of 4.
        for i in 0..10 {
            s.on_ack(t(40 + i), 4, t(20));
        }
        assert_eq!(s.stats().retransmits, retx_after_entry);
        assert_eq!(s.stats().fast_retransmits, 1);
    }

    #[test]
    fn ece_reduces_once_per_window() {
        use crate::cc::Dctcp;
        let cfg = TcpConfig::default().with_ecn();
        let mut s = TcpSender::new(cfg, Box::new(Dctcp), None);
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        s.on_ack(t(20), 4, t(10)); // cwnd 6, flight 6 (4..10)
        let cwnd0 = s.cwnd();
        let mut out = Vec::new();
        // First ECE: reduce, set CWR.
        s.on_ack_ecn_into(t(30), 5, t(20), true, &mut out);
        let cwnd1 = s.cwnd();
        assert!(cwnd1 < cwnd0, "ECE must shrink cwnd");
        assert!(s.take_cwr(), "reduction sets the CWR flag");
        assert!(!s.take_cwr(), "flag is consumed");
        // More ECE within the same window: suppressed.
        s.on_ack_ecn_into(t(31), 6, t(20), true, &mut out);
        assert!(s.cwnd() >= cwnd1, "no second reduction inside the window");
        assert!(!s.take_cwr(), "no second reduction inside the window");
    }

    #[test]
    fn ece_ignored_when_ecn_disabled() {
        let mut s = TcpSender::new(TcpConfig::default(), Box::new(Reno), None);
        let mut plain = TcpSender::new(TcpConfig::default(), Box::new(Reno), None);
        s.start(t(0));
        plain.start(t(0));
        let mut out = Vec::new();
        s.on_ack_ecn_into(t(10), 1, t(0), true, &mut out);
        plain.on_ack(t(10), 1, t(0));
        assert_eq!(s.cwnd(), plain.cwnd());
        assert!(!s.take_cwr());
        assert_eq!(s.ecn_alpha(), 1.0, "estimator never runs with ECN off");
    }

    #[test]
    fn alpha_tracks_mark_fraction() {
        use crate::cc::Dctcp;
        let cfg = TcpConfig::default().with_ecn().with_max_window(4);
        let mut s = TcpSender::new(cfg, Box::new(Dctcp), None);
        s.start(t(0));
        // Long run of unmarked windows: α decays toward 0.
        let mut ack = 0;
        for i in 0..400 {
            ack += 1;
            let mut out = Vec::new();
            s.on_ack_ecn_into(t(10 * (i + 1)), ack, t(10 * i), false, &mut out);
        }
        assert!(s.ecn_alpha() < 0.01, "α = {}", s.ecn_alpha());
        // A fully marked stretch pulls it back up.
        for i in 400..460 {
            ack += 1;
            let mut out = Vec::new();
            s.on_ack_ecn_into(t(10 * (i + 1)), ack, t(10 * i), true, &mut out);
        }
        assert!(s.ecn_alpha() > 0.5, "α = {}", s.ecn_alpha());
        assert!(s.ecn_alpha() <= 1.0);
    }

    #[test]
    fn classic_ecn_halves_like_loss() {
        let cfg = TcpConfig::default().with_ecn();
        let mut s = TcpSender::new(cfg, Box::new(Reno), None);
        s.start(t(0));
        s.on_ack(t(10), 2, t(0));
        s.on_ack(t(20), 4, t(10)); // flight 6
        let mut out = Vec::new();
        s.on_ack_ecn_into(t(30), 5, t(20), true, &mut out);
        // Default on_ecn_mark = halve_on_loss(flight): flight was 6 → 3.
        assert_eq!(s.ssthresh(), 3.0);
        assert!(s.take_cwr());
    }

    #[test]
    fn rto_backoff_visible_in_armed_delay() {
        let mut s = TcpSender::new(TcpConfig::default(), Box::new(Reno), None);
        let a0 = s.start(t(0));
        let d0 = a0
            .iter()
            .find_map(|a| match a {
                TcpAction::ArmRto { delay, .. } => Some(*delay),
                _ => None,
            })
            .unwrap();
        let a1 = s.on_rto(t(1000), s.rto_gen());
        let d1 = a1
            .iter()
            .find_map(|a| match a {
                TcpAction::ArmRto { delay, .. } => Some(*delay),
                _ => None,
            })
            .unwrap();
        assert_eq!(d1, d0 * 2, "exponential backoff");
    }
}
