//! Wrap-safe 32-bit sequence-number arithmetic.
//!
//! On the wire (`netsim::TcpHeader`) sequence numbers are 32-bit and wrap,
//! exactly like real TCP. Internally the state machines work with unwrapped
//! `u64` segment indexes; [`SeqUnwrapper`] recovers the unwrapped value from
//! the wire representation, assuming successive values never jump by more
//! than half the sequence space (true for any windowed protocol).
//!
//! This module is the one sanctioned home for narrowing sequence casts —
//! wrapping to 32 bits *is* the wire format here, so the determinism
//! contract's lossy-cast rule is waived for the whole file.
// simlint: allow-file(lossy-cast): wrapping to 32 bits is the wire format; this module is the sanctioned home for narrowing sequence casts

/// Serial-number comparison (RFC 1982 style) for 32-bit sequence numbers:
/// `a` is *before* `b` iff the signed distance `b - a` is positive.
pub fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

/// `a <= b` in wrap-safe serial order.
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// `a > b` in wrap-safe serial order.
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// `a >= b` in wrap-safe serial order.
pub fn seq_ge(a: u32, b: u32) -> bool {
    a == b || seq_gt(a, b)
}

/// Wrap-safe distance from `a` forward to `b` (only meaningful when
/// `seq_le(a, b)`).
pub fn seq_distance(a: u32, b: u32) -> u32 {
    b.wrapping_sub(a)
}

/// Recovers unwrapped `u64` sequence indexes from wrapping `u32` wire values.
///
/// The unwrapper tracks the last unwrapped value and maps each new wire value
/// to the unwrapped candidate closest to it. Works as long as consecutive
/// observed values differ by less than `2^31`.
#[derive(Clone, Debug, Default)]
pub struct SeqUnwrapper {
    last: u64,
    initialized: bool,
}

impl SeqUnwrapper {
    /// Creates an unwrapper anchored at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unwraps a wire value.
    pub fn unwrap(&mut self, wire: u32) -> u64 {
        if !self.initialized {
            self.initialized = true;
            self.last = wire as u64;
            return self.last;
        }
        let last_wire = self.last as u32;
        let delta = wire.wrapping_sub(last_wire) as i32;
        // Signed delta keeps us on the same "lap" of the sequence space,
        // moving forward or backward by less than 2^31.
        let unwrapped = (self.last as i64 + delta as i64).max(0) as u64;
        // Only advance the anchor forward; reordered old packets must not
        // drag it backwards.
        if unwrapped > self.last {
            self.last = unwrapped;
        }
        unwrapped
    }
}

/// Truncates an unwrapped index to its 32-bit wire representation.
pub fn to_wire(seq: u64) -> u32 {
    seq as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_without_wrap() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
        assert!(!seq_lt(5, 5));
        assert!(seq_le(5, 5));
        assert!(seq_gt(7, 3));
        assert!(seq_ge(7, 7));
    }

    #[test]
    fn comparisons_across_wrap() {
        let near_max = u32::MAX - 2;
        assert!(seq_lt(near_max, 1)); // wraps forward
        assert!(seq_gt(1, near_max));
        assert_eq!(seq_distance(near_max, 1), 4);
    }

    #[test]
    fn unwrapper_monotone_stream() {
        let mut u = SeqUnwrapper::new();
        for i in 0..1000u64 {
            assert_eq!(u.unwrap(to_wire(i)), i);
        }
    }

    #[test]
    fn unwrapper_across_wrap() {
        let mut u = SeqUnwrapper::new();
        let start = u32::MAX as u64 - 5;
        // Anchor near the wrap point.
        assert_eq!(u.unwrap(to_wire(start)), start);
        for i in start + 1..start + 100 {
            assert_eq!(u.unwrap(to_wire(i)), i, "at {i}");
        }
    }

    #[test]
    fn unwrapper_tolerates_reordering() {
        let mut u = SeqUnwrapper::new();
        assert_eq!(u.unwrap(100), 100);
        assert_eq!(u.unwrap(105), 105);
        // An old packet arrives late: it must map below the anchor and not
        // disturb subsequent unwrapping.
        assert_eq!(u.unwrap(99), 99);
        assert_eq!(u.unwrap(106), 106);
    }

    #[test]
    fn unwrapper_reordering_across_wrap() {
        let mut u = SeqUnwrapper::new();
        let start = u32::MAX as u64 - 1;
        assert_eq!(u.unwrap(to_wire(start)), start);
        assert_eq!(u.unwrap(to_wire(start + 3)), start + 3); // past the wrap
        assert_eq!(u.unwrap(to_wire(start + 1)), start + 1); // late, pre-wrap
    }
}

/// Unwraps a wire value known to lie within ±2³¹ of `anchor` (e.g. SACK
/// block edges, which sit inside the send window around the cumulative
/// ACK).
pub fn unwrap_relative(anchor: u64, wire: u32) -> u64 {
    let delta = wire.wrapping_sub(anchor as u32) as i32;
    (anchor as i64 + delta as i64).max(0) as u64
}

#[cfg(test)]
mod relative_tests {
    use super::*;

    #[test]
    fn relative_forward_and_backward() {
        assert_eq!(unwrap_relative(1000, 1005), 1005);
        assert_eq!(unwrap_relative(1000, 995), 995);
    }

    #[test]
    fn relative_across_wrap() {
        let anchor = u32::MAX as u64 + 10;
        assert_eq!(unwrap_relative(anchor, to_wire(anchor + 5)), anchor + 5);
        assert_eq!(unwrap_relative(anchor, to_wire(anchor - 15)), anchor - 15);
    }
}
