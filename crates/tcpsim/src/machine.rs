//! The sender-machine abstraction: one interface over the Reno-family
//! sender ([`TcpSender`]) and the SACK sender
//! ([`SackSender`](crate::sack::SackSender)), so agents and workloads can
//! hold either.

use crate::receiver::SackRanges;
use crate::rtt::RttEstimator;
use crate::sender::{SenderStats, TcpAction, TcpSender};
use simcore::SimTime;

/// Everything an incoming acknowledgement tells the sender.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// Cumulative ACK (unwrapped segment number).
    pub ack: u64,
    /// Echoed send timestamp, for RTT sampling.
    pub ts_echo: SimTime,
    /// SACK blocks (empty for non-SACK receivers).
    pub sack: SackRanges,
    /// ECN-Echo: the receiver saw a CE mark since its last ACK
    /// (always `false` on non-ECN connections).
    pub ece: bool,
}

impl AckInfo {
    /// A plain cumulative ACK with no SACK information and no ECE.
    pub fn plain(ack: u64, ts_echo: SimTime) -> Self {
        AckInfo {
            ack,
            ts_echo,
            sack: SackRanges::default(),
            ece: false,
        }
    }
}

/// A TCP sender state machine: consumes ACKs and timer expiries, produces
/// [`TcpAction`]s.
///
/// Deliberately not `Send`: sender state lives in a
/// [`SharedFlowTable`](crate::table::SharedFlowTable) (`Rc<RefCell<…>>`)
/// shared by every flow of one single-threaded simulation. Parallel sweeps
/// build each simulation inside its own worker thread, so machines never
/// cross threads.
pub trait SenderMachine {
    /// Upcast for downcasting to a concrete machine (diagnostics/tests).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Begins transmission, appending actions to `out`.
    ///
    /// All three event entry points take an out-parameter instead of
    /// returning a fresh `Vec`: the agent drives one of these per ACK, so a
    /// per-call allocation would sit directly on the simulator's hottest
    /// path. Callers pass a reusable scratch buffer (cleared between calls).
    fn start(&mut self, now: SimTime, out: &mut Vec<TcpAction>);
    /// Processes an acknowledgement, appending actions to `out`.
    fn on_ack(&mut self, now: SimTime, info: &AckInfo, out: &mut Vec<TcpAction>);
    /// Processes a retransmission-timeout expiry (stale generations are
    /// ignored), appending actions to `out`.
    fn on_rto(&mut self, now: SimTime, gen: u64, out: &mut Vec<TcpAction>);

    /// Congestion window (segments).
    fn cwnd(&self) -> f64;
    /// Slow-start threshold (segments).
    fn ssthresh(&self) -> f64;
    /// Outstanding segments.
    fn flight(&self) -> u64;
    /// Oldest unacknowledged segment.
    fn snd_una(&self) -> u64;
    /// Next new segment.
    fn next_seq(&self) -> u64;
    /// True once a finite flow is fully acknowledged.
    fn is_completed(&self) -> bool;
    /// True while the sender is in loss recovery (Reno fast recovery, SACK
    /// recovery). A pure observable, used by span detection
    /// ([`crate::span`]) to report recovery entry/exit transitions.
    fn in_recovery(&self) -> bool;
    /// Counters.
    fn stats(&self) -> SenderStats;
    /// A snapshot of the RTT estimator (diagnostics). Returned by value:
    /// the estimator lives behind the flow table's `RefCell`, so a
    /// reference cannot escape.
    fn rtt(&self) -> RttEstimator;
    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;
    /// Consumes the pending CWR flag: true exactly once after an
    /// ECE-triggered window reduction, telling the agent to stamp CWR on
    /// the next outgoing data segment. Default: never (machines without an
    /// ECN response path).
    fn take_cwr(&mut self) -> bool {
        false
    }
}

impl SenderMachine for TcpSender {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn start(&mut self, now: SimTime, out: &mut Vec<TcpAction>) {
        TcpSender::start_into(self, now, out)
    }
    fn on_ack(&mut self, now: SimTime, info: &AckInfo, out: &mut Vec<TcpAction>) {
        // The Reno-family sender ignores SACK blocks.
        TcpSender::on_ack_ecn_into(self, now, info.ack, info.ts_echo, info.ece, out)
    }
    fn on_rto(&mut self, now: SimTime, gen: u64, out: &mut Vec<TcpAction>) {
        TcpSender::on_rto_into(self, now, gen, out)
    }
    fn cwnd(&self) -> f64 {
        TcpSender::cwnd(self)
    }
    fn ssthresh(&self) -> f64 {
        TcpSender::ssthresh(self)
    }
    fn flight(&self) -> u64 {
        TcpSender::flight(self)
    }
    fn snd_una(&self) -> u64 {
        TcpSender::snd_una(self)
    }
    fn next_seq(&self) -> u64 {
        TcpSender::next_seq(self)
    }
    fn is_completed(&self) -> bool {
        TcpSender::is_completed(self)
    }
    fn in_recovery(&self) -> bool {
        TcpSender::state(self) == crate::sender::SenderState::FastRecovery
    }
    fn stats(&self) -> SenderStats {
        TcpSender::stats(self)
    }
    fn rtt(&self) -> RttEstimator {
        TcpSender::rtt(self)
    }
    fn name(&self) -> &'static str {
        self.cc_name()
    }
    fn take_cwr(&mut self) -> bool {
        TcpSender::take_cwr(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use crate::TcpConfig;

    #[test]
    fn trait_object_drives_reno_sender() {
        let mut m: Box<dyn SenderMachine> = Box::new(TcpSender::new(
            TcpConfig::default(),
            Box::new(Reno),
            Some(4),
        ));
        let mut a = Vec::new();
        m.start(SimTime::ZERO, &mut a);
        assert!(!a.is_empty());
        assert_eq!(m.name(), "reno");
        a.clear();
        m.on_ack(
            SimTime::from_millis(50),
            &AckInfo::plain(2, SimTime::ZERO),
            &mut a,
        );
        assert!(!a.is_empty());
        a.clear();
        m.on_ack(
            SimTime::from_millis(90),
            &AckInfo::plain(4, SimTime::ZERO),
            &mut a,
        );
        assert!(m.is_completed());
    }
}
