//! Adapters binding the TCP state machines to `netsim`'s [`Agent`] API.
//!
//! [`TcpSource`] drives a [`TcpSender`] on the sending host; [`TcpSink`]
//! drives a [`TcpReceiver`] on the destination host and emits ACK packets
//! back to the source. One `TcpSource`/`TcpSink` pair per flow; both are
//! bound to the flow id with [`netsim::Sim::bind_flow`].

use crate::cc::CongestionControl;
use crate::config::TcpConfig;
use crate::machine::{AckInfo, SenderMachine};
use crate::receiver::{SackRanges, TcpReceiver};
use crate::sack::SackSender;
use crate::sender::{TcpAction, TcpSender};
use crate::seq::{to_wire, unwrap_relative, SeqUnwrapper};
use crate::span::{SpanDetector, SpanLog, SpanSnapshot};
use netsim::{Agent, Ctx, FlowId, NodeId, Packet, PacketKind, TcpFlags, TcpHeader};
use simcore::{SimDuration, SimTime};
use std::any::Any;

/// Timer token for the deferred flow start.
const TOKEN_START: u64 = u64::MAX;
/// Timer token for the pacing clock.
const TOKEN_PACE: u64 = u64::MAX - 1;
/// Timer token for the (single outstanding, self-re-arming) RTO timer.
const TOKEN_RTO: u64 = u64::MAX - 2;

/// Completed-flow record used by experiment harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// The flow.
    pub flow: FlowId,
    /// Flow length in segments.
    pub segments: u64,
    /// When the first segment was sent.
    pub start: SimTime,
    /// When the last segment reached the destination.
    pub end: SimTime,
}

impl FlowRecord {
    /// Flow completion time: "the time from when the first packet is sent
    /// until the last packet reaches the destination" (§5.1.2).
    pub fn fct(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Sender-side agent: one per flow.
pub struct TcpSource {
    flow: FlowId,
    dst: NodeId,
    cfg: TcpConfig,
    sender: Box<dyn SenderMachine>,
    start_delay: SimDuration,
    started_at: Option<SimTime>,
    completed_at: Option<SimTime>,
    trace_cwnd: bool,
    ack_unwrap: SeqUnwrapper,
    /// Pace transmissions at cwnd/RTT instead of ack-clocked bursts
    /// (extension: paced TCP is the classic fix for very small buffers).
    pacing: bool,
    pace_queue: std::collections::VecDeque<(u64, bool, bool)>,
    pace_armed: bool,
    /// Lifecycle span tracing (see [`crate::span`]); off by default.
    spans: Option<SpanDetector>,
    /// Latest RTO generation announced by the sender machine.
    rto_gen: u64,
    /// Absolute deadline of the latest armed RTO.
    rto_deadline: SimTime,
    /// When the single outstanding RTO kernel timer fires, if one is out.
    ///
    /// The sender machine re-arms its RTO on every ACK; scheduling each of
    /// those through the kernel would put one (almost always stale) long
    /// timer per ACK into the event queue. Instead at most one RTO timer is
    /// outstanding: when it fires early (the deadline has since moved), it
    /// re-arms itself for the remainder — one kernel timer per RTO *window*
    /// instead of one per ACK, with identical firing semantics.
    rto_timer_at: Option<SimTime>,
    /// Reusable action buffer passed to the sender machine on every event,
    /// so the per-ACK hot path allocates nothing (see [`SenderMachine`]).
    scratch: Vec<TcpAction>,
}

impl TcpSource {
    /// Creates a source for `flow` towards the host `dst`.
    pub fn new(
        flow: FlowId,
        dst: NodeId,
        cfg: TcpConfig,
        cc: Box<dyn CongestionControl>,
        flow_size: Option<u64>,
    ) -> Self {
        Self::with_machine(flow, dst, cfg, Box::new(TcpSender::new(cfg, cc, flow_size)))
    }

    /// Creates a source around an explicit sender machine (e.g.
    /// [`SackSender`]).
    pub fn with_machine(
        flow: FlowId,
        dst: NodeId,
        cfg: TcpConfig,
        machine: Box<dyn SenderMachine>,
    ) -> Self {
        TcpSource {
            flow,
            dst,
            sender: machine,
            cfg,
            start_delay: SimDuration::ZERO,
            started_at: None,
            completed_at: None,
            trace_cwnd: false,
            ack_unwrap: SeqUnwrapper::new(),
            pacing: false,
            pace_queue: std::collections::VecDeque::new(),
            pace_armed: false,
            spans: None,
            rto_gen: 0,
            rto_deadline: SimTime::ZERO,
            rto_timer_at: None,
            scratch: Vec::new(),
        }
    }

    /// Enables pacing: data segments leave at intervals of `RTT/cwnd`
    /// instead of back-to-back on each ACK. Smooth arrivals need far less
    /// buffering (Figure 8's worst case assumes the opposite: intact
    /// slow-start bursts).
    pub fn with_pacing(mut self) -> Self {
        self.pacing = true;
        self
    }

    /// Delays the flow start by `d` after simulation start.
    pub fn with_start_delay(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }

    /// Records `cwnd.<flow>` into the trace sink on every update.
    pub fn with_cwnd_trace(mut self) -> Self {
        self.trace_cwnd = true;
        self
    }

    /// Enables lifecycle span tracing: congestion-control transitions
    /// (slow-start exit, fast retransmit, recovery exit, RTO) are recorded
    /// into a bounded [`SpanLog`] of `capacity` records (see
    /// [`crate::span`]). A pure observer — it reads sender state around
    /// each input and never perturbs the run.
    pub fn with_span_log(mut self, capacity: usize) -> Self {
        self.spans = Some(SpanDetector::new(self.flow, capacity));
        self
    }

    /// The lifecycle span log, if [`TcpSource::with_span_log`] was used.
    pub fn span_log(&self) -> Option<&SpanLog> {
        self.spans.as_ref().map(|d| d.log())
    }

    /// Snapshots sender observables if span tracing is on (pair with
    /// [`TcpSource::span_diff`]).
    fn span_snap(&self) -> Option<SpanSnapshot> {
        self.spans.as_ref().map(|d| d.before(self.sender.as_ref()))
    }

    /// Diffs the sender against a [`TcpSource::span_snap`] snapshot and
    /// logs any transition.
    fn span_diff(&mut self, now: SimTime, before: Option<SpanSnapshot>) {
        if let (Some(d), Some(b)) = (self.spans.as_mut(), before) {
            d.after(now, b, self.sender.as_ref());
        }
    }

    /// Creates a SACK source (RFC 2018/3517-style recovery).
    pub fn new_sack(flow: FlowId, dst: NodeId, cfg: TcpConfig, flow_size: Option<u64>) -> Self {
        Self::with_machine(flow, dst, cfg, Box::new(SackSender::new(cfg, flow_size)))
    }

    /// The underlying sender machine (cwnd, ssthresh, stats…).
    pub fn sender(&self) -> &dyn SenderMachine {
        self.sender.as_ref()
    }

    /// When the flow started sending, if it has.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// When every segment was acknowledged (sender-side completion).
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    // simlint: hot-path — every outgoing data segment
    fn transmit(&mut self, seq: u64, retransmit: bool, fin: bool, ctx: &mut Ctx<'_>) {
        // CWR rides on the first data segment after an ECE-triggered
        // reduction (RFC 3168 §6.1.2); take_cwr is a no-op default for
        // machines without an ECN path, and cfg.ecn gates the call so
        // non-ECN runs never touch the flow-table flag.
        let cwr = self.cfg.ecn && self.sender.take_cwr();
        let hdr = TcpHeader {
            seq: to_wire(seq),
            ack: 0,
            flags: TcpFlags {
                syn: seq == 0 && !retransmit,
                fin,
                ece: false,
                cwr,
            },
            ts: ctx.now(),
            sack: netsim::SackBlocks::EMPTY,
        };
        let mut pkt = ctx.make_packet(
            self.flow,
            self.dst,
            self.cfg.data_size,
            PacketKind::TcpData(hdr),
        );
        if self.cfg.ecn {
            // ECN-capable transport: routers mark instead of dropping.
            pkt.ecn = netsim::Ecn::Ect;
        }
        ctx.send(pkt);
    }

    /// Interval between paced transmissions: `RTT / cwnd`.
    fn pace_interval(&self) -> SimDuration {
        let rtt = self
            .sender
            .rtt()
            .srtt()
            .unwrap_or(SimDuration::from_millis(50));
        let cwnd = self.sender.cwnd().max(1.0);
        SimDuration::from_nanos((rtt.as_nanos() as f64 / cwnd) as u64)
    }

    fn pace_pop(&mut self, ctx: &mut Ctx<'_>) {
        match self.pace_queue.pop_front() {
            Some((seq, retransmit, fin)) => {
                self.transmit(seq, retransmit, fin, ctx);
                if self.pace_queue.is_empty() {
                    self.pace_armed = false;
                } else {
                    let interval = self.pace_interval();
                    ctx.set_timer(interval, TOKEN_PACE);
                    self.pace_armed = true;
                }
            }
            None => self.pace_armed = false,
        }
    }

    /// Executes sender actions, draining `actions` (a scratch buffer owned
    /// by the caller, returned empty for reuse).
    // simlint: hot-path — once per ACK/RTO delivered to the sender
    fn apply(&mut self, actions: &mut Vec<TcpAction>, ctx: &mut Ctx<'_>) {
        for a in actions.drain(..) {
            match a {
                TcpAction::Send {
                    seq,
                    retransmit,
                    fin,
                } => {
                    if self.pacing {
                        self.pace_queue.push_back((seq, retransmit, fin));
                    } else {
                        self.transmit(seq, retransmit, fin, ctx);
                    }
                }
                TcpAction::ArmRto { delay, gen } => {
                    let deadline = ctx.now() + delay;
                    self.rto_gen = gen;
                    self.rto_deadline = deadline;
                    // Only arm when no outstanding timer covers the new
                    // deadline (fires at or before it); otherwise that
                    // firing will re-arm for the remainder.
                    match self.rto_timer_at {
                        Some(t) if t <= deadline => {}
                        _ => {
                            ctx.set_timer(delay, TOKEN_RTO);
                            self.rto_timer_at = Some(deadline);
                        }
                    }
                }
                TcpAction::Completed => self.completed_at = Some(ctx.now()),
            }
        }
        if self.pacing && !self.pace_armed && !self.pace_queue.is_empty() {
            // First segment of an idle pacing clock goes out immediately.
            self.pace_pop(ctx);
        }
        if self.trace_cwnd {
            let cwnd = self.sender.cwnd();
            let now = ctx.now();
            let name = format!("cwnd.{}", self.flow.0);
            ctx.trace().record(&name, now, cwnd);
        }
    }
}

impl Agent for TcpSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_delay, TOKEN_START);
    }

    // simlint: hot-path — once per ACK delivered to the source
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketKind::TcpAck(hdr) = pkt.kind {
            let ack = self.ack_unwrap.unwrap(hdr.ack);
            let mut sack = SackRanges::default();
            for (a, b) in hdr.sack.iter() {
                let lo = unwrap_relative(ack, a);
                let hi = unwrap_relative(ack, b);
                if hi > lo {
                    sack.blocks[sack.len as usize] = (lo, hi);
                    sack.len += 1;
                }
            }
            let info = AckInfo {
                ack,
                ts_echo: hdr.ts,
                sack,
                ece: hdr.flags.ece,
            };
            let before = self.span_snap();
            let mut actions = std::mem::take(&mut self.scratch);
            self.sender.on_ack(ctx.now(), &info, &mut actions);
            self.span_diff(ctx.now(), before);
            self.apply(&mut actions, ctx);
            self.scratch = actions;
        }
    }

    // simlint: hot-path — pace/RTO timer deliveries
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == TOKEN_START {
            if self.started_at.is_none() {
                self.started_at = Some(ctx.now());
                let mut actions = std::mem::take(&mut self.scratch);
                self.sender.start(ctx.now(), &mut actions);
                self.apply(&mut actions, ctx);
                self.scratch = actions;
            }
        } else if token == TOKEN_PACE {
            self.pace_pop(ctx);
        } else if token == TOKEN_RTO {
            self.rto_timer_at = None;
            let now = ctx.now();
            if now < self.rto_deadline {
                // The deadline moved since this timer was armed (ACKs came
                // in): sleep for the remainder instead of delivering.
                let rest = self.rto_deadline.since(now);
                ctx.set_timer(rest, TOKEN_RTO);
                self.rto_timer_at = Some(self.rto_deadline);
            } else {
                // Due: deliver with the latest generation. The sender
                // ignores it if it disarmed (advanced the gen) meanwhile.
                let before = self.span_snap();
                let mut actions = std::mem::take(&mut self.scratch);
                self.sender.on_rto(now, self.rto_gen, &mut actions);
                self.span_diff(now, before);
                self.apply(&mut actions, ctx);
                self.scratch = actions;
            }
        }
    }

    /// Reports `cwnd.<flow>` (packets) and, once an RTT sample exists,
    /// `rtt.<flow>` (seconds, smoothed) to the telemetry sampler. A pure
    /// read of the sender machine: sampling never perturbs the run.
    fn on_telemetry(&self, emit: &mut dyn FnMut(&str, f64)) {
        emit(&format!("cwnd.{}", self.flow.0), self.sender.cwnd());
        if let Some(srtt) = self.sender.rtt().srtt() {
            emit(&format!("rtt.{}", self.flow.0), srtt.as_secs_f64());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Receiver-side agent: one per flow.
pub struct TcpSink {
    flow: FlowId,
    receiver: TcpReceiver,
    delack_timeout: SimDuration,
    seq_unwrap: SeqUnwrapper,
    delack_gen: u64,
    delack_to: Option<NodeId>,
}

impl TcpSink {
    /// Creates a sink for `flow` with the given configuration.
    pub fn new(flow: FlowId, cfg: &TcpConfig) -> Self {
        TcpSink {
            flow,
            receiver: TcpReceiver::new(cfg.delayed_ack),
            delack_timeout: cfg.delack_timeout,
            seq_unwrap: SeqUnwrapper::new(),
            delack_gen: 0,
            delack_to: None,
        }
    }

    /// The underlying receiver.
    pub fn receiver(&self) -> &TcpReceiver {
        &self.receiver
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The completed-flow record, if the flow has finished.
    pub fn record(&self) -> Option<FlowRecord> {
        let end = self.receiver.completed_at()?;
        let start = self.receiver.first_created()?;
        Some(FlowRecord {
            flow: self.flow,
            segments: self.receiver.delivered(),
            start,
            end,
        })
    }

    // simlint: hot-path — every outgoing ACK
    fn send_ack(
        &self,
        ack: u64,
        ts_echo: SimTime,
        sack: SackRanges,
        ece: bool,
        to: NodeId,
        ctx: &mut Ctx<'_>,
    ) {
        let mut wire_sack = netsim::SackBlocks::EMPTY;
        for (lo, hi) in sack.iter() {
            wire_sack.blocks[wire_sack.len as usize] = (to_wire(lo), to_wire(hi));
            wire_sack.len += 1;
        }
        let hdr = TcpHeader {
            seq: 0,
            ack: to_wire(ack),
            flags: TcpFlags {
                ece,
                ..TcpFlags::default()
            },
            ts: ts_echo,
            sack: wire_sack,
        };
        let pkt = ctx.make_packet(self.flow, to, Packet::ACK_SIZE, PacketKind::TcpAck(hdr));
        ctx.send(pkt);
    }
}

impl Agent for TcpSink {
    // simlint: hot-path — once per data segment at the sink
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketKind::TcpData(hdr) = pkt.kind {
            let seq = self.seq_unwrap.unwrap(hdr.seq);
            // ECN first: a CE mark on this segment must be reflected in the
            // very ACK it triggers (no-op for non-ECN traffic: NotEct
            // packets are never marked and senders never set CWR).
            self.receiver
                .on_ecn(pkt.ecn == netsim::Ecn::Ce, hdr.flags.cwr);
            let res = self
                .receiver
                .on_data(ctx.now(), seq, hdr.flags.fin, hdr.ts, pkt.created);
            if let Some(ack) = res.ack {
                self.send_ack(ack.ack, ack.ts_echo, ack.sack, ack.ece, pkt.src, ctx);
            }
            if res.arm_delack {
                self.delack_gen += 1;
                // Remember where to send the delayed ACK.
                self.delack_to = Some(pkt.src);
                ctx.set_timer(self.delack_timeout, self.delack_gen);
            }
        }
    }

    // simlint: hot-path — delayed-ACK timer deliveries
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == self.delack_gen {
            if let Some(ack) = self.receiver.on_delack_timer() {
                if let Some(to) = self.delack_to {
                    self.send_ack(ack.ack, ack.ts_echo, ack.sack, ack.ece, to, ctx);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use netsim::{DumbbellBuilder, Sim};
    use simcore::SimTime;

    /// One TCP flow over a dumbbell. Returns (sim, source agent id, sink
    /// agent id, dumbbell).
    fn one_flow(
        rate_bps: u64,
        delay: SimDuration,
        buffer_pkts: usize,
        flow_size: Option<u64>,
    ) -> (Sim, netsim::AgentId, netsim::AgentId, netsim::Dumbbell) {
        let mut sim = Sim::new(7);
        let d = DumbbellBuilder::new(rate_bps, delay)
            .buffer_packets(buffer_pkts)
            .flows(1, SimDuration::from_millis(10))
            .build(&mut sim);
        let flow = FlowId(0);
        let cfg = TcpConfig::default();
        let src = TcpSource::new(flow, d.sinks[0], cfg, Box::new(Reno), flow_size);
        let src_id = sim.add_agent(d.sources[0], Box::new(src));
        let sink = TcpSink::new(flow, &cfg);
        let sink_id = sim.add_agent(d.sinks[0], Box::new(sink));
        sim.bind_flow(flow, d.sinks[0], sink_id);
        sim.bind_flow(flow, d.sources[0], src_id);
        (sim, src_id, sink_id, d)
    }

    #[test]
    fn short_flow_completes_without_loss() {
        // 10 Mb/s, plenty of buffer: a 20-segment flow completes quickly.
        let (mut sim, src_id, sink_id, _d) =
            one_flow(10_000_000, SimDuration::from_millis(5), 1000, Some(20));
        sim.start();
        sim.run_until(SimTime::from_secs(5));
        let sink = sim.agent_as::<TcpSink>(sink_id).unwrap();
        let rec = sink.record().expect("flow should complete");
        assert_eq!(rec.segments, 20);
        assert!(rec.fct() < SimDuration::from_secs(1), "fct = {}", rec.fct());
        let src = sim.agent_as::<TcpSource>(src_id).unwrap();
        assert!(src.sender().is_completed());
        assert_eq!(src.sender().stats().retransmits, 0);
        assert_eq!(sink.receiver().duplicates(), 0);
    }

    #[test]
    fn long_flow_saturates_bottleneck_with_bdp_buffer() {
        // The paper's rule-of-thumb check: B = 2Tp*C keeps the link busy.
        // 2Tp = 2*(10+5) ms = 30 ms; C = 10 Mb/s; BDP = 37.5 pkts -> 38.
        let (mut sim, _src, _sink, d) =
            one_flow(10_000_000, SimDuration::from_millis(5), 38, None);
        sim.start();
        // Warm up past slow start, then measure.
        sim.run_until(SimTime::from_secs(10));
        let now = sim.now();
        sim.kernel_mut().link_mut(d.bottleneck).monitor.mark(now);
        sim.run_until(SimTime::from_secs(40));
        let util = sim
            .kernel()
            .link(d.bottleneck)
            .monitor
            .utilization(sim.now(), 10_000_000);
        assert!(util > 0.99, "util = {util}");
    }

    #[test]
    fn severely_underbuffered_single_flow_loses_throughput() {
        // B = 2 packets << BDP: utilization must drop well below 100%.
        let (mut sim, _src, _sink, d) =
            one_flow(10_000_000, SimDuration::from_millis(5), 2, None);
        sim.start();
        sim.run_until(SimTime::from_secs(10));
        let now = sim.now();
        sim.kernel_mut().link_mut(d.bottleneck).monitor.mark(now);
        sim.run_until(SimTime::from_secs(40));
        let util = sim
            .kernel()
            .link(d.bottleneck)
            .monitor
            .utilization(sim.now(), 10_000_000);
        assert!(util < 0.90, "util = {util}");
        // And losses must have occurred.
        assert!(sim.kernel().stats().drops > 0);
    }

    #[test]
    fn sawtooth_emerges_with_losses() {
        let (mut sim, src_id, _sink, _d) =
            one_flow(10_000_000, SimDuration::from_millis(5), 38, None);
        sim.enable_tracing();
        // Re-add tracing-enabled source? Simpler: check sender counters.
        sim.start();
        sim.run_until(SimTime::from_secs(60));
        let src = sim.agent_as::<TcpSource>(src_id).unwrap();
        let st = src.sender().stats();
        // A long-lived flow in a finite buffer experiences repeated fast
        // retransmits (the sawtooth), but should rarely time out.
        assert!(st.fast_retransmits >= 3, "{st:?}");
        assert!(st.timeouts <= st.fast_retransmits / 3 + 1, "{st:?}");
    }

    #[test]
    fn goodput_accounting_consistent() {
        let (mut sim, src_id, sink_id, _d) =
            one_flow(5_000_000, SimDuration::from_millis(5), 10, Some(500));
        sim.start();
        sim.run_until(SimTime::from_secs(30));
        let sink = sim.agent_as::<TcpSink>(sink_id).unwrap();
        let src = sim.agent_as::<TcpSource>(src_id).unwrap();
        let rec = sink.record().expect("completes");
        assert_eq!(rec.segments, 500);
        // Sent = unique + retransmits (conservation).
        let st = src.sender().stats();
        assert!(st.segments_sent >= 500);
        // Debug: find segments sent more than once with retransmit=false.
        let mut newcount = std::collections::BTreeMap::new();
        let reno = src
            .sender()
            .as_any()
            .downcast_ref::<crate::sender::TcpSender>()
            .expect("reno machine");
        for &(seq, retx) in &reno.send_log {
            if !retx { *newcount.entry(seq).or_insert(0u32) += 1; }
        }
        let dups: Vec<_> = newcount.iter().filter(|(_, &c)| c > 1).collect();
        assert_eq!(
            st.segments_sent - st.retransmits,
            500,
            "every unique segment sent exactly once as new data; dups={dups:?}"
        );
    }

    #[test]
    fn delayed_ack_flow_still_completes() {
        let mut sim = Sim::new(3);
        let d = DumbbellBuilder::new(10_000_000, SimDuration::from_millis(5))
            .buffer_packets(100)
            .flows(1, SimDuration::from_millis(10))
            .build(&mut sim);
        let flow = FlowId(0);
        let cfg = TcpConfig::default().with_delayed_ack();
        let src = TcpSource::new(flow, d.sinks[0], cfg, Box::new(Reno), Some(50));
        let src_id = sim.add_agent(d.sources[0], Box::new(src));
        let sink = TcpSink::new(flow, &cfg);
        let sink_id = sim.add_agent(d.sinks[0], Box::new(sink));
        sim.bind_flow(flow, d.sinks[0], sink_id);
        sim.bind_flow(flow, d.sources[0], src_id);
        sim.start();
        sim.run_until(SimTime::from_secs(10));
        let sink = sim.agent_as::<TcpSink>(sink_id).unwrap();
        assert!(sink.record().is_some(), "delayed-ack flow must complete");
    }

    #[test]
    fn span_log_records_sawtooth_transitions_without_perturbing() {
        use crate::span::SpanKind;
        // A long flow in a small buffer produces the classic sawtooth:
        // fast retransmits with cwnd halvings, and recovery exits.
        let run = |spans: bool| -> (Sim, netsim::AgentId) {
            let mut sim = Sim::new(7);
            let d = DumbbellBuilder::new(10_000_000, SimDuration::from_millis(5))
                .buffer_packets(10)
                .flows(1, SimDuration::from_millis(10))
                .build(&mut sim);
            let flow = FlowId(0);
            let cfg = TcpConfig::default();
            let mut src = TcpSource::new(flow, d.sinks[0], cfg, Box::new(Reno), None);
            if spans {
                src = src.with_span_log(4096);
            }
            let src_id = sim.add_agent(d.sources[0], Box::new(src));
            let sink_id = sim.add_agent(d.sinks[0], Box::new(TcpSink::new(flow, &cfg)));
            sim.bind_flow(flow, d.sinks[0], sink_id);
            sim.bind_flow(flow, d.sources[0], src_id);
            sim.start();
            sim.run_until(SimTime::from_secs(30));
            (sim, src_id)
        };

        let (base, base_id) = run(false);
        let (traced, traced_id) = run(true);
        // Purity: span tracing must not change the sender's trajectory.
        let b = base.agent_as::<TcpSource>(base_id).unwrap();
        let t = traced.agent_as::<TcpSource>(traced_id).unwrap();
        assert_eq!(b.sender().stats(), t.sender().stats());
        assert_eq!(base.kernel().stats().drops, traced.kernel().stats().drops);

        let log = t.span_log().expect("enabled");
        let st = t.sender().stats();
        let count =
            |k: SpanKind| log.iter().filter(|r| r.kind == k).count() as u64;
        // Every counted fast retransmit / timeout appears as a span, and
        // each fast retransmit halves the window.
        assert_eq!(count(SpanKind::FastRetransmit), st.fast_retransmits);
        assert_eq!(count(SpanKind::Rto), st.timeouts);
        assert!(st.fast_retransmits >= 3, "{st:?}");
        // Each fast retransmit resets cwnd to ssthresh = flight/2, and each
        // recovery ends with a matching exit span (the last recovery may
        // still be open when the run stops).
        for r in log.iter().filter(|r| r.kind == SpanKind::FastRetransmit) {
            assert_eq!(r.cwnd_after, r.ssthresh_after, "{r:?}");
        }
        let exits = count(SpanKind::RecoveryExit);
        assert!(
            exits >= st.fast_retransmits - 1,
            "exits = {exits}, {st:?}"
        );
        // The join key works: every record carries the flow id.
        assert_eq!(log.for_flow(FlowId(0)).count(), log.len());
        assert_eq!(log.for_flow(FlowId(9)).count(), 0);
        // Records land in time order (single flow, monotone clock).
        let times: Vec<u64> = log.iter().map(|r| r.time.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn start_delay_respected() {
        let mut sim = Sim::new(3);
        let d = DumbbellBuilder::new(10_000_000, SimDuration::from_millis(5))
            .buffer_packets(100)
            .flows(1, SimDuration::from_millis(10))
            .build(&mut sim);
        let flow = FlowId(0);
        let cfg = TcpConfig::default();
        let src = TcpSource::new(flow, d.sinks[0], cfg, Box::new(Reno), Some(5))
            .with_start_delay(SimDuration::from_secs(2));
        let src_id = sim.add_agent(d.sources[0], Box::new(src));
        let sink = TcpSink::new(flow, &cfg);
        let sink_id = sim.add_agent(d.sinks[0], Box::new(sink));
        sim.bind_flow(flow, d.sinks[0], sink_id);
        sim.bind_flow(flow, d.sources[0], src_id);
        sim.start();
        sim.run_until(SimTime::from_secs(10));
        let src = sim.agent_as::<TcpSource>(src_id).unwrap();
        assert_eq!(src.started_at(), Some(SimTime::from_secs(2)));
        let rec = sim.agent_as::<TcpSink>(sink_id).unwrap().record().unwrap();
        assert!(rec.start >= SimTime::from_secs(2));
    }
}
