//! Struct-of-arrays storage for per-flow TCP sender state.
//!
//! Historically every flow carried its hot state inside its own boxed
//! [`TcpSender`](crate::sender::TcpSender)/[`SackSender`](crate::sack::SackSender),
//! so a sweep over `n` flows chased `n` scattered heap allocations on every
//! ACK. [`FlowTable`] flips the layout: the fields the per-ACK path touches
//! — congestion window pair, sequence cursors, recovery state, RTO/RTT
//! estimator — live in dense parallel arrays keyed by a slab [`FlowSlot`],
//! while the rarely-touched cold state (lifecycle flags, counters, the SACK
//! scoreboard sets) sits in a side table indexed by the same slot.
//!
//! The sender state machines become thin views: they hold a
//! [`SharedFlowTable`] handle plus their slot and run the exact same
//! arithmetic against the arrays. Single-flow users (unit tests, ad-hoc
//! diagnostics) never see the difference — `TcpSender::new` allocates a
//! private one-slot table — while multi-flow workloads pass one shared
//! table to every source so all hot flow state is contiguous.
//!
//! This is a pure storage refactor: field-for-field the same values, the
//! same operations in the same order, so every simulation result and
//! committed artifact digest is byte-identical to the boxed layout.

use crate::cc::CcState;
use crate::config::TcpConfig;
use crate::rtt::RttEstimator;
use crate::sender::SenderStats;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Slab index of one flow's state in a [`FlowTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowSlot(pub u32);

impl FlowSlot {
    /// The raw array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// SACK scoreboard for one flow (side table: only SACK senders touch it,
/// and only while holes exist).
#[derive(Debug, Default)]
pub struct Scoreboard {
    /// Segments above `snd_una` known received (RFC 3517 scoreboard).
    pub sacked: BTreeSet<u64>,
    /// Segments retransmitted during the current recovery episode.
    pub retx: BTreeSet<u64>,
}

/// Cold per-flow state: touched once per lifecycle transition or read only
/// by diagnostics, so it stays out of the hot arrays.
#[derive(Debug, Default)]
pub struct ColdFlow {
    /// `start()` has been called.
    pub started: bool,
    /// Every segment of a finite flow has been acknowledged.
    pub completed: bool,
    /// Sender counters.
    pub stats: SenderStats,
    /// SACK scoreboard (empty and untouched for Reno-family senders).
    pub scoreboard: Scoreboard,
}

/// Dense parallel arrays of hot per-flow sender state.
///
/// Fields are `pub(crate)`: the sender state machines index them directly
/// (`table.ccs[i].cwnd`, …) so the per-ACK path is array arithmetic, not
/// accessor calls.
#[derive(Debug, Default)]
pub struct FlowTable {
    /// Congestion window / slow-start threshold pair (the unit every
    /// [`CongestionControl`](crate::cc::CongestionControl) mutates).
    pub(crate) ccs: Vec<CcState>,
    /// Next never-before-sent segment.
    pub(crate) next_seq: Vec<u64>,
    /// Oldest unacknowledged segment.
    pub(crate) snd_una: Vec<u64>,
    /// Recovery point (highest `next_seq` when recovery was entered).
    pub(crate) high_water: Vec<u64>,
    /// Highest sequence ever sent + 1 (SACK senders; never rewinds).
    pub(crate) max_sent: Vec<u64>,
    /// Consecutive duplicate-ACK count.
    pub(crate) dupacks: Vec<u32>,
    /// Window inflation during Reno fast recovery.
    pub(crate) inflation: Vec<f64>,
    /// True while in loss recovery (Reno fast recovery, SACK recovery).
    pub(crate) recovery: Vec<bool>,
    /// RTO timer generation (stale-timer rejection).
    pub(crate) rto_gen: Vec<u64>,
    /// RTT estimator + RTO backoff state.
    pub(crate) rtt: Vec<RttEstimator>,
    /// DCTCP EWMA estimate of the fraction of segments marked (RFC 8257
    /// `α`). Initialised to 1.0 so the first marked window reacts fully.
    pub(crate) ecn_alpha: Vec<f64>,
    /// Segments acknowledged in the current α observation window.
    pub(crate) ecn_acked: Vec<u64>,
    /// Of those, segments whose ACK carried ECE.
    pub(crate) ecn_marked: Vec<u64>,
    /// Sequence ending the current α observation window (`next_seq` at the
    /// time the window opened; the update fires when `snd_una` passes it).
    pub(crate) ecn_obs_end: Vec<u64>,
    /// Sequence ending the current CWR episode: ECE-triggered window
    /// reductions are suppressed until `snd_una` passes this point, giving
    /// the standard once-per-window-of-data mark reaction.
    pub(crate) ecn_cwr_end: Vec<u64>,
    /// A window reduction happened and the next outgoing data segment must
    /// carry the CWR flag to tell the receiver its echo was heard.
    pub(crate) cwr_pending: Vec<bool>,
    /// Cold side table, same slot indexing.
    pub(crate) cold: Vec<ColdFlow>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Allocates a slot initialised from `cfg` (initial cwnd, RTO bounds).
    pub fn alloc(&mut self, cfg: &TcpConfig) -> FlowSlot {
        let slot = FlowSlot(self.ccs.len() as u32);
        self.ccs.push(CcState::new(cfg.initial_cwnd));
        self.next_seq.push(0);
        self.snd_una.push(0);
        self.high_water.push(0);
        self.max_sent.push(0);
        self.dupacks.push(0);
        self.inflation.push(0.0);
        self.recovery.push(false);
        self.rto_gen.push(0);
        self.rtt
            .push(RttEstimator::new(cfg.min_rto, cfg.max_rto, cfg.initial_rto));
        self.ecn_alpha.push(1.0);
        self.ecn_acked.push(0);
        self.ecn_marked.push(0);
        self.ecn_obs_end.push(0);
        self.ecn_cwr_end.push(0);
        self.cwr_pending.push(false);
        self.cold.push(ColdFlow::default());
        slot
    }

    /// Number of allocated slots. Slots are never freed, so this is also
    /// the table's high-water mark (reported by the self-profiler).
    pub fn len(&self) -> usize {
        self.ccs.len()
    }

    /// True if no flow has been allocated.
    pub fn is_empty(&self) -> bool {
        self.ccs.is_empty()
    }

    /// Congestion window of `slot`, in segments.
    pub fn cwnd(&self, slot: FlowSlot) -> f64 {
        self.ccs[slot.index()].cwnd
    }

    /// Slow-start threshold of `slot`, in segments.
    pub fn ssthresh(&self, slot: FlowSlot) -> f64 {
        self.ccs[slot.index()].ssthresh
    }

    /// Outstanding (sent, unacked) segments of `slot`.
    pub fn flight(&self, slot: FlowSlot) -> u64 {
        self.next_seq[slot.index()] - self.snd_una[slot.index()]
    }

    /// DCTCP mark-fraction estimate `α` of `slot` (1.0 until the first
    /// observation window completes; meaningful only on ECN flows).
    pub fn ecn_alpha(&self, slot: FlowSlot) -> f64 {
        self.ecn_alpha[slot.index()]
    }
}

/// A [`FlowTable`] shared by every sender of one simulation.
///
/// Simulations are single-threaded, so plain `Rc<RefCell<…>>` suffices;
/// each event entry point borrows the table once for its whole callback.
#[derive(Clone, Debug, Default)]
pub struct SharedFlowTable(Rc<RefCell<FlowTable>>);

impl SharedFlowTable {
    /// Creates an empty shared table.
    pub fn new() -> Self {
        SharedFlowTable::default()
    }

    /// Reserves room for `additional` more flows in every parallel array
    /// (a pure performance hint for workloads that know their flow count).
    pub fn reserve(&self, additional: usize) {
        let mut t = self.0.borrow_mut();
        t.ccs.reserve(additional);
        t.next_seq.reserve(additional);
        t.snd_una.reserve(additional);
        t.high_water.reserve(additional);
        t.max_sent.reserve(additional);
        t.dupacks.reserve(additional);
        t.inflation.reserve(additional);
        t.recovery.reserve(additional);
        t.rto_gen.reserve(additional);
        t.rtt.reserve(additional);
        t.ecn_alpha.reserve(additional);
        t.ecn_acked.reserve(additional);
        t.ecn_marked.reserve(additional);
        t.ecn_obs_end.reserve(additional);
        t.ecn_cwr_end.reserve(additional);
        t.cwr_pending.reserve(additional);
        t.cold.reserve(additional);
    }

    /// Allocates a slot (see [`FlowTable::alloc`]).
    pub fn alloc(&self, cfg: &TcpConfig) -> FlowSlot {
        self.0.borrow_mut().alloc(cfg)
    }

    /// Immutable borrow of the table.
    pub fn table(&self) -> std::cell::Ref<'_, FlowTable> {
        self.0.borrow()
    }

    /// Mutable borrow of the table.
    pub fn table_mut(&self) -> std::cell::RefMut<'_, FlowTable> {
        self.0.borrow_mut()
    }

    /// Number of allocated slots (the table's high-water mark).
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True if no flow has been allocated.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_dense_slots() {
        let t = SharedFlowTable::new();
        let cfg = TcpConfig::default();
        let a = t.alloc(&cfg);
        let b = t.alloc(&cfg);
        assert_eq!(a, FlowSlot(0));
        assert_eq!(b, FlowSlot(1));
        assert_eq!(t.len(), 2);
        let tb = t.table();
        assert_eq!(tb.cwnd(a), cfg.initial_cwnd);
        assert!(tb.ssthresh(a).is_infinite());
        assert_eq!(tb.flight(b), 0);
    }

    #[test]
    fn shared_handle_aliases_one_table() {
        let t = SharedFlowTable::new();
        let t2 = t.clone();
        let slot = t.alloc(&TcpConfig::default());
        t2.table_mut().ccs[slot.index()].cwnd = 9.0;
        assert_eq!(t.table().cwnd(slot), 9.0);
        assert_eq!(t2.len(), 1);
    }
}
