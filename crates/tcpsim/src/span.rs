//! Flow-lifecycle tracing: span-style records of congestion-control state
//! transitions.
//!
//! The paper's buffer-sizing argument is a story about sender *transitions*
//! — slow-start overshoot, synchronized cwnd halvings, recovery — so the
//! observability layer records exactly those: every time a sender machine
//! leaves slow start, fires a fast retransmit, deflates out of recovery, or
//! takes a retransmission timeout, a [`SpanRecord`] lands in a bounded
//! [`SpanLog`] (backed by `simcore`'s generic ring). Records carry the flow
//! id and simulation time, so they join against the kernel's packet log and
//! the drop-forensics ledger to produce causal narratives ("overflow drop →
//! triple dupack → cwnd halved").
//!
//! Detection is a pure *diff* of the [`SenderMachine`] observables
//! (cwnd/ssthresh/loss counters) before and after each input, taken by
//! [`SpanDetector`]. Nothing is added to the sender state machines
//! themselves, no randomness is consumed, and the log is bounded — enabling
//! span tracing can never change the outcome of a run (DESIGN.md §9, §10).

use crate::machine::SenderMachine;
use netsim::FlowId;
use simcore::trace::Ring;
use simcore::SimTime;

/// A congestion-control lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// cwnd crossed ssthresh without loss: slow start ended, congestion
    /// avoidance begins.
    SlowStartExit,
    /// Triple duplicate ACK triggered a fast retransmit (cwnd halves).
    FastRetransmit,
    /// Recovery completed; cwnd deflated to ssthresh.
    RecoveryExit,
    /// The retransmission timer expired (cwnd back to one segment).
    Rto,
}

impl SpanKind {
    /// Every kind, in rendering order.
    pub const ALL: [SpanKind; 4] = [
        SpanKind::SlowStartExit,
        SpanKind::FastRetransmit,
        SpanKind::RecoveryExit,
        SpanKind::Rto,
    ];

    /// Stable lowercase name (used in JSONL exports and narratives).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::SlowStartExit => "slow-start-exit",
            SpanKind::FastRetransmit => "fast-retransmit",
            SpanKind::RecoveryExit => "recovery-exit",
            SpanKind::Rto => "rto",
        }
    }

    /// Stable numeric code (used in digests).
    pub fn code(self) -> u8 {
        match self {
            SpanKind::SlowStartExit => 0,
            SpanKind::FastRetransmit => 1,
            SpanKind::RecoveryExit => 2,
            SpanKind::Rto => 3,
        }
    }
}

/// One recorded state transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanRecord {
    /// When the transition happened.
    pub time: SimTime,
    /// The flow whose sender transitioned.
    pub flow: FlowId,
    /// What happened.
    pub kind: SpanKind,
    /// Congestion window (segments) before the triggering input.
    pub cwnd_before: f64,
    /// Congestion window (segments) after.
    pub cwnd_after: f64,
    /// Slow-start threshold (segments) after.
    pub ssthresh_after: f64,
    /// Oldest unacknowledged segment after the input.
    pub snd_una: u64,
}

impl SpanRecord {
    /// The record's window evidence as Chrome-trace instant arguments, in
    /// the order the trace exporter (`buffersizing::traceexport`) emits
    /// them. Lives here so the meaning of each field and its trace label
    /// stay in one place.
    pub fn trace_args(&self) -> Vec<(&'static str, simcore::traceviz::ArgValue)> {
        use simcore::traceviz::ArgValue;
        vec![
            ("cwnd_before", ArgValue::F64(self.cwnd_before)),
            ("cwnd_after", ArgValue::F64(self.cwnd_after)),
            ("ssthresh", ArgValue::F64(self.ssthresh_after)),
            ("snd_una", ArgValue::U64(self.snd_una)),
        ]
    }
}

/// A bounded, ring-buffered log of [`SpanRecord`]s.
#[derive(Clone, Debug)]
pub struct SpanLog {
    ring: Ring<SpanRecord>,
}

impl SpanLog {
    /// Creates a log keeping the most recent `capacity` records.
    pub fn new(capacity: usize) -> Self {
        SpanLog {
            ring: Ring::new(capacity),
        }
    }

    /// Appends a record (the oldest is evicted once full).
    pub fn push(&mut self, rec: SpanRecord) {
        self.ring.push(rec);
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True iff no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.ring.total_pushed()
    }

    /// Retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.ring.iter()
    }

    /// Retained records for one flow, oldest first, without allocating.
    pub fn for_flow(&self, flow: FlowId) -> impl Iterator<Item = &SpanRecord> {
        self.ring.iter().filter(move |r| r.flow == flow)
    }

    /// Merges another log's retained records into this one in time order
    /// (stable for equal times: `self`'s records first). Used by harnesses
    /// to combine per-flow logs into one joinable timeline.
    pub fn merge_sorted(logs: &[&SpanLog], capacity: usize) -> SpanLog {
        let mut all: Vec<SpanRecord> = logs
            .iter()
            .flat_map(|l| l.iter().copied())
            .collect();
        all.sort_by(|a, b| {
            (a.time, a.flow.0, a.kind.code()).cmp(&(b.time, b.flow.0, b.kind.code()))
        });
        let mut out = SpanLog::new(capacity.max(1));
        for r in all {
            out.push(r);
        }
        out
    }

    /// A 64-bit FNV-1a digest over every retained record. Bit-identical
    /// runs produce identical digests; the determinism tests compare these.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for r in self.iter() {
            mix(r.time.as_nanos());
            mix(u64::from(r.flow.0));
            mix(u64::from(r.kind.code()));
            mix(r.cwnd_before.to_bits());
            mix(r.cwnd_after.to_bits());
            mix(r.ssthresh_after.to_bits());
            mix(r.snd_una);
        }
        mix(self.total_pushed());
        h
    }

    /// Renders the retained records as JSON Lines, one span per line, in
    /// log order. Floats use `{:.3}` so the output is byte-stable.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.iter() {
            out.push_str(&format!(
                "{{\"t\":{:.9},\"flow\":{},\"kind\":\"{}\",\"cwnd_before\":{:.3},\
                 \"cwnd_after\":{:.3},\"ssthresh\":{:.3},\"snd_una\":{}}}\n",
                r.time.as_secs_f64(),
                r.flow.0,
                r.kind.name(),
                r.cwnd_before,
                r.cwnd_after,
                r.ssthresh_after,
                r.snd_una,
            ));
        }
        out
    }
}

/// Observable sender state captured before delivering an input.
#[derive(Clone, Copy, Debug)]
pub struct SpanSnapshot {
    cwnd: f64,
    ssthresh: f64,
    fast_retransmits: u64,
    timeouts: u64,
    in_recovery: bool,
}

/// Diffs [`SenderMachine`] observables around each input and emits
/// [`SpanRecord`]s for the transitions it detects.
///
/// The detector never mutates the machine: it reads `cwnd`, `ssthresh`,
/// `snd_una` and the loss counters, so it works uniformly for every
/// [`SenderMachine`] implementation (Reno family and SACK) without the
/// machines knowing they are being observed.
#[derive(Clone, Debug)]
pub struct SpanDetector {
    flow: FlowId,
    log: SpanLog,
}

impl SpanDetector {
    /// Creates a detector for `flow` with a log of `capacity` records.
    pub fn new(flow: FlowId, capacity: usize) -> Self {
        SpanDetector {
            flow,
            log: SpanLog::new(capacity),
        }
    }

    /// Captures the machine's observables before an input is delivered.
    pub fn before(&self, m: &dyn SenderMachine) -> SpanSnapshot {
        let st = m.stats();
        SpanSnapshot {
            cwnd: m.cwnd(),
            ssthresh: m.ssthresh(),
            fast_retransmits: st.fast_retransmits,
            timeouts: st.timeouts,
            in_recovery: m.in_recovery(),
        }
    }

    /// Compares the machine's observables against a [`SpanSnapshot`] and
    /// logs any transition the input caused.
    pub fn after(&mut self, now: SimTime, before: SpanSnapshot, m: &dyn SenderMachine) {
        let st = m.stats();
        let cwnd = m.cwnd();
        let ssthresh = m.ssthresh();
        let kind = if st.timeouts > before.timeouts {
            Some(SpanKind::Rto)
        } else if st.fast_retransmits > before.fast_retransmits {
            Some(SpanKind::FastRetransmit)
        } else if before.in_recovery && !m.in_recovery() {
            // Left recovery with no new loss: the repair ACK arrived and
            // the window deflated to ssthresh.
            Some(SpanKind::RecoveryExit)
        } else if before.cwnd < before.ssthresh && cwnd >= ssthresh {
            // Grew across ssthresh with no loss: slow start ended.
            Some(SpanKind::SlowStartExit)
        } else {
            None
        };
        if let Some(kind) = kind {
            self.log.push(SpanRecord {
                time: now,
                flow: self.flow,
                kind,
                cwnd_before: before.cwnd,
                cwnd_after: cwnd,
                ssthresh_after: ssthresh,
                snd_una: m.snd_una(),
            });
        }
    }

    /// The accumulated log.
    pub fn log(&self) -> &SpanLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use crate::machine::AckInfo;
    use crate::sender::TcpSender;
    use crate::TcpConfig;

    fn record(kind: SpanKind, t: u64, flow: u32) -> SpanRecord {
        SpanRecord {
            time: SimTime::from_millis(t),
            flow: FlowId(flow),
            kind,
            cwnd_before: 44.0,
            cwnd_after: 22.0,
            ssthresh_after: 22.0,
            snd_una: 8812,
        }
    }

    #[test]
    fn kind_names_and_codes_are_distinct() {
        let mut names = std::collections::BTreeSet::new();
        let mut codes = std::collections::BTreeSet::new();
        for k in SpanKind::ALL {
            names.insert(k.name());
            codes.insert(k.code());
        }
        assert_eq!(names.len(), SpanKind::ALL.len());
        assert_eq!(codes.len(), SpanKind::ALL.len());
    }

    #[test]
    fn log_is_bounded_and_counts_evictions() {
        let mut log = SpanLog::new(2);
        for i in 0..5 {
            log.push(record(SpanKind::Rto, i, 0));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_pushed(), 5);
        let times: Vec<u64> = log.iter().map(|r| r.time.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = SpanLog::new(8);
        let mut b = SpanLog::new(8);
        a.push(record(SpanKind::FastRetransmit, 1, 0));
        b.push(record(SpanKind::FastRetransmit, 1, 0));
        assert_eq!(a.digest(), b.digest());
        b.push(record(SpanKind::Rto, 2, 0));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn jsonl_is_one_line_per_span() {
        let mut log = SpanLog::new(8);
        log.push(record(SpanKind::FastRetransmit, 1240, 7));
        let s = log.to_jsonl();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("\"kind\":\"fast-retransmit\""));
        assert!(s.contains("\"flow\":7"));
        assert!(s.contains("\"cwnd_before\":44.000"));
        assert!(s.contains("\"snd_una\":8812"));
    }

    #[test]
    fn merge_sorted_orders_by_time_then_flow() {
        let mut a = SpanLog::new(8);
        let mut b = SpanLog::new(8);
        a.push(record(SpanKind::Rto, 5, 0));
        b.push(record(SpanKind::FastRetransmit, 3, 1));
        b.push(record(SpanKind::RecoveryExit, 9, 1));
        let merged = SpanLog::merge_sorted(&[&a, &b], 16);
        let kinds: Vec<SpanKind> = merged.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::FastRetransmit, SpanKind::Rto, SpanKind::RecoveryExit]
        );
    }

    /// Drives a real Reno machine through loss and checks the detector sees
    /// the canonical transitions.
    #[test]
    fn detector_sees_fast_retransmit_and_recovery_exit() {
        let cfg = TcpConfig::default();
        let mut m = TcpSender::new(cfg, Box::new(Reno), None);
        let mut det = SpanDetector::new(FlowId(3), 64);
        let t = |ms: u64| SimTime::from_millis(ms);
        m.start(t(0));
        // Grow the window a little.
        for i in 1..=8u64 {
            let b = det.before(&m);
            SenderMachine::on_ack(&mut m, t(10 * i), &AckInfo::plain(i, t(0)), &mut Vec::new());
            det.after(t(10 * i), b, &m);
        }
        assert!(det.log().is_empty(), "no transitions during growth");
        // Drop segment 9: three duplicate ACKs for 8.
        for d in 0..3u64 {
            let b = det.before(&m);
            SenderMachine::on_ack(&mut m, t(100 + d), &AckInfo::plain(8, t(0)), &mut Vec::new());
            det.after(t(100 + d), b, &m);
        }
        let kinds: Vec<SpanKind> = det.log().iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![SpanKind::FastRetransmit]);
        let fr = det.log().iter().next().unwrap();
        assert!(fr.cwnd_after < fr.cwnd_before);
        // The repair ACK deflates cwnd to ssthresh: recovery exit.
        let b = det.before(&m);
        let big_ack = m.next_seq();
        SenderMachine::on_ack(&mut m, t(200), &AckInfo::plain(big_ack, t(0)), &mut Vec::new());
        det.after(t(200), b, &m);
        let kinds: Vec<SpanKind> = det.log().iter().map(|r| r.kind).collect();
        assert!(
            kinds.contains(&SpanKind::RecoveryExit),
            "kinds = {kinds:?}"
        );
    }

    #[test]
    fn detector_sees_rto() {
        let cfg = TcpConfig::default();
        let mut m = TcpSender::new(cfg, Box::new(Reno), None);
        let mut det = SpanDetector::new(FlowId(0), 64);
        let actions = m.start(SimTime::ZERO);
        // Find the armed RTO generation from the start actions.
        let wait = actions.iter().find_map(|a| match a {
            crate::sender::TcpAction::ArmRto { delay, gen } => Some((*delay, *gen)),
            _ => None,
        });
        let (delay, gen) = wait.expect("start arms an RTO");
        let b = det.before(&m);
        SenderMachine::on_rto(&mut m, SimTime::ZERO + delay, gen, &mut Vec::new());
        det.after(SimTime::ZERO + delay, b, &m);
        let kinds: Vec<SpanKind> = det.log().iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![SpanKind::Rto]);
    }
}
