//! Round-trip-time estimation and retransmission timeout (RTO) computation.
//!
//! Implements the Jacobson/Karels estimator used by every deployed TCP (and
//! by ns-2): `SRTT ← (1−α)·SRTT + α·sample`, `RTTVAR ← (1−β)·RTTVAR +
//! β·|SRTT − sample|` with α = 1/8, β = 1/4, and `RTO = SRTT + 4·RTTVAR`
//! clamped to `[min_rto, max_rto]`. Successive timeouts double the RTO
//! (exponential backoff); the backoff resets on the next valid sample.
//!
//! Karn's problem (ambiguous samples from retransmitted segments) is solved
//! at the sender by timestamp echo: every data segment carries its own send
//! time, so samples are always unambiguous and backoff can be cleared on any
//! new sample.

use simcore::SimDuration;

/// RTT estimator + RTO state for one connection.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator. `initial_rto` is used before the first sample
    /// (RFC 6298 suggests 1 s; ns-2 uses 3 s by default — configurable).
    pub fn new(min_rto: SimDuration, max_rto: SimDuration, initial_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto);
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            initial_rto,
            backoff: 0,
        }
    }

    /// Feeds one RTT sample.
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                // First sample: SRTT = R, RTTVAR = R/2 (RFC 6298).
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − R|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar.mul_f64(0.75) + err.mul_f64(0.25);
                // SRTT ← 7/8·SRTT + 1/8·R
                self.srtt = Some(srtt.mul_f64(0.875) + rtt.mul_f64(0.125));
            }
        }
        // A valid (timestamp-based, unambiguous) sample clears backoff.
        self.backoff = 0;
    }

    /// The smoothed RTT, if at least one sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// The current RTO, including backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.initial_rto,
            Some(srtt) => {
                let raw = srtt + self.rttvar * 4;
                if raw < self.min_rto {
                    self.min_rto
                } else {
                    raw
                }
            }
        };
        let scaled = base * (1u64 << self.backoff.min(16));
        if scaled > self.max_rto {
            self.max_rto
        } else {
            scaled
        }
    }

    /// Doubles the RTO (called on each retransmission timeout).
    pub fn backoff(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// The current backoff exponent (0 = no backoff).
    pub fn backoff_count(&self) -> u32 {
        self.backoff
    }
}

impl Default for RttEstimator {
    /// ns-2-flavoured defaults: min RTO 200 ms, max 60 s, initial 1 s.
    fn default() -> Self {
        RttEstimator::new(
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
            SimDuration::from_secs(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::default()
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = est();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        assert_eq!(e.rttvar(), SimDuration::from_millis(50));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn converges_to_constant_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        assert!((srtt - 80.0).abs() < 0.5, "srtt = {srtt}");
        // Variance decays toward zero, so RTO approaches min_rto.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn rto_floor_applies() {
        let mut e = est();
        for _ in 0..50 {
            e.sample(SimDuration::from_millis(10));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        let base = e.rto();
        e.backoff();
        assert_eq!(e.rto(), base * 2);
        e.backoff();
        assert_eq!(e.rto(), base * 4);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60)); // max cap
    }

    #[test]
    fn sample_clears_backoff() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        e.backoff();
        e.backoff();
        assert_eq!(e.backoff_count(), 2);
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.backoff_count(), 0);
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut e = est();
        for i in 0..100 {
            let ms = if i % 2 == 0 { 50 } else { 150 };
            e.sample(SimDuration::from_millis(ms));
        }
        // With ±50 ms jitter the RTO must sit well above SRTT.
        let srtt = e.srtt().unwrap();
        assert!(e.rto() > srtt + SimDuration::from_millis(100));
    }
}
