//! The TCP receiver state machine.
//!
//! Generates cumulative ACKs, reassembles out-of-order segments, and
//! optionally delays ACKs (every second segment or a timeout, RFC 1122).
//! Out-of-order arrivals always trigger an immediate duplicate ACK so the
//! sender's fast retransmit works.

use simcore::SimTime;
use std::collections::BTreeSet;

/// Up to three `[start, end)` SACK ranges in unwrapped segment numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SackRanges {
    /// `[start, end)` pairs; only the first `len` are valid.
    pub blocks: [(u64, u64); 3],
    /// Number of valid blocks.
    pub len: u8,
}

impl SackRanges {
    /// The valid blocks.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }

    /// True when no blocks are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, b: (u64, u64)) {
        if (self.len as usize) < 3 {
            self.blocks[self.len as usize] = b;
            self.len += 1;
        }
    }
}

/// An acknowledgement the receiver wants transmitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckToSend {
    /// Cumulative ACK: next expected (unwrapped) segment number.
    pub ack: u64,
    /// Echo of the send timestamp of the segment that triggered this ACK.
    pub ts_echo: SimTime,
    /// SACK blocks describing out-of-order data held above `ack`
    /// (RFC 2018; empty when the receiver has no holes).
    pub sack: SackRanges,
    /// ECN-Echo: at least one CE-marked segment arrived since the last ACK
    /// this receiver emitted (see [`TcpReceiver::on_ecn`]).
    pub ece: bool,
}

/// Result of processing one data segment.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnData {
    /// ACK to send now, if any.
    pub ack: Option<AckToSend>,
    /// Arm the delayed-ACK timer (only when delayed ACKs are enabled and an
    /// ACK was withheld).
    pub arm_delack: bool,
    /// The flow finished with this segment (FIN received and everything
    /// before it delivered).
    pub completed: bool,
}

/// The TCP receiver.
#[derive(Debug)]
pub struct TcpReceiver {
    /// Next expected segment.
    rcv_nxt: u64,
    /// Out-of-order segments above `rcv_nxt`.
    ooo: BTreeSet<u64>,
    /// Sequence number of the FIN segment, once seen.
    fin_seq: Option<u64>,
    delayed_ack: bool,
    /// A withheld ACK waiting for a second segment or the delack timer.
    pending: Option<AckToSend>,
    /// Counters.
    segments_received: u64,
    duplicates: u64,
    out_of_order: u64,
    completed_at: Option<SimTime>,
    /// Earliest `created` timestamp among received segments (≈ flow start).
    first_created: Option<SimTime>,
    /// A CE-marked segment arrived and no ACK has echoed it yet. Consumed
    /// when an ACK is *emitted* (not when one is withheld), so a delayed
    /// ACK aggregates the marks of its whole window — the per-mark-precise
    /// echo DCTCP's fraction estimator needs, and a conservative superset
    /// of the RFC 3168 hold-until-CWR echo for classic ECN.
    ce_pending: bool,
    /// CWR-flagged data segments seen (sender acknowledged an ECE).
    cwr_seen: u64,
}

impl TcpReceiver {
    /// Creates a receiver. `delayed_ack` mirrors
    /// [`TcpConfig::delayed_ack`](crate::TcpConfig).
    pub fn new(delayed_ack: bool) -> Self {
        TcpReceiver {
            rcv_nxt: 0,
            ooo: BTreeSet::new(),
            fin_seq: None,
            delayed_ack,
            pending: None,
            segments_received: 0,
            duplicates: 0,
            out_of_order: 0,
            completed_at: None,
            first_created: None,
            ce_pending: false,
            cwr_seen: 0,
        }
    }

    /// Next expected segment number (the cumulative ACK value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Unique in-order segments delivered so far.
    pub fn delivered(&self) -> u64 {
        self.rcv_nxt
    }

    /// Total segments received (including duplicates and out-of-order).
    pub fn segments_received(&self) -> u64 {
        self.segments_received
    }

    /// Duplicate segments received.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Out-of-order segments received.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// When the flow completed (FIN + everything before it), if it has.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// Earliest source timestamp seen (≈ when the first packet was sent).
    pub fn first_created(&self) -> Option<SimTime> {
        self.first_created
    }

    /// CWR-flagged data segments seen so far.
    pub fn cwr_seen(&self) -> u64 {
        self.cwr_seen
    }

    /// Records the ECN bits of an arriving data segment; the agent calls
    /// this before [`TcpReceiver::on_data`]. A CE mark latches `ece` for
    /// the next emitted ACK (the latch survives ACK withholding and clears
    /// only when an ACK actually goes out).
    // simlint: hot-path — once per data segment on ECN-enabled flows
    pub fn on_ecn(&mut self, ce: bool, cwr: bool) {
        if ce {
            self.ce_pending = true;
        }
        if cwr {
            self.cwr_seen += 1;
        }
    }

    /// Consumes the CE latch into an outgoing ACK's `ece` bit.
    // simlint: hot-path — once per emitted ACK
    #[inline]
    fn take_ece(&mut self) -> bool {
        std::mem::take(&mut self.ce_pending)
    }

    /// Processes a data segment.
    ///
    /// * `seq` — unwrapped segment number;
    /// * `fin` — segment carries FIN;
    /// * `ts` — the sender's transmission timestamp (echoed back for RTT);
    /// * `created` — packet creation time (for flow-start bookkeeping);
    /// * `now` — arrival time.
    pub fn on_data(&mut self, now: SimTime, seq: u64, fin: bool, ts: SimTime, created: SimTime) -> OnData {
        self.segments_received += 1;
        if self.first_created.map(|t| created < t).unwrap_or(true) {
            self.first_created = Some(created);
        }
        if fin {
            self.fin_seq = Some(seq);
        }

        let mut result = OnData::default();

        if seq < self.rcv_nxt || self.ooo.contains(&seq) {
            // Duplicate: ACK immediately (flushes any pending delack too).
            self.duplicates += 1;
            self.pending = None;
            result.ack = Some(AckToSend {
                ack: self.rcv_nxt,
                ts_echo: ts,
                sack: self.sack_ranges(seq),
                ece: self.take_ece(),
            });
            return result;
        }

        if seq == self.rcv_nxt {
            // In order: advance, absorbing any contiguous out-of-order run.
            self.rcv_nxt += 1;
            while self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
            }
            let filled_gap = !self.ooo.is_empty();
            let complete = self
                .fin_seq
                .map(|f| self.rcv_nxt > f)
                .unwrap_or(false);
            if complete && self.completed_at.is_none() {
                self.completed_at = Some(now);
                result.completed = true;
            }

            if self.delayed_ack && !filled_gap && !complete {
                match self.pending.take() {
                    Some(_) => {
                        // Second in-order segment: release the ACK now.
                        result.ack = Some(AckToSend {
                            ack: self.rcv_nxt,
                            ts_echo: ts,
                            sack: self.sack_ranges(seq),
                            ece: self.take_ece(),
                        });
                    }
                    None => {
                        // Withhold; the agent arms the delack timer. The CE
                        // latch is NOT consumed here — `ece` is stamped when
                        // the ACK is actually emitted.
                        self.pending = Some(AckToSend {
                            ack: self.rcv_nxt,
                            ts_echo: ts,
                            sack: SackRanges::default(),
                            ece: false,
                        });
                        result.arm_delack = true;
                    }
                }
            } else {
                self.pending = None;
                result.ack = Some(AckToSend {
                    ack: self.rcv_nxt,
                    ts_echo: ts,
                    sack: self.sack_ranges(seq),
                    ece: self.take_ece(),
                });
            }
        } else {
            // Above rcv_nxt: hole. Buffer it and send an immediate dup ACK.
            self.out_of_order += 1;
            self.ooo.insert(seq);
            self.pending = None;
            result.ack = Some(AckToSend {
                ack: self.rcv_nxt,
                ts_echo: ts,
                sack: self.sack_ranges(seq),
                ece: self.take_ece(),
            });
        }
        result
    }

    /// Delayed-ACK timer expiry: release any withheld ACK.
    pub fn on_delack_timer(&mut self) -> Option<AckToSend> {
        let mut ack = self.pending.take()?;
        ack.ece = self.take_ece();
        Some(ack)
    }

    /// Builds the SACK option for an outgoing ACK. The first block is the
    /// run containing `trigger` (the most recently received segment, per
    /// RFC 2018); the remaining slots report the lowest other runs.
    // simlint: hot-path — built for every dup/partial ACK while holes exist
    fn sack_ranges(&self, trigger: u64) -> SackRanges {
        let mut out = SackRanges::default();
        if self.ooo.is_empty() {
            return out;
        }
        // Single ascending pass over the out-of-order set: contiguous runs
        // are discovered in order, the run containing `trigger` is held
        // aside for the first slot, and the lowest other runs fill the
        // remaining two. No per-ACK allocation.
        let mut trigger_run: Option<(u64, u64)> = None;
        let mut low = [(0u64, 0u64); 3];
        let mut n_low = 0usize;
        let mut emit = |run: (u64, u64)| {
            if trigger >= run.0 && trigger < run.1 {
                trigger_run = Some(run);
            } else if n_low < low.len() {
                low[n_low] = run;
                n_low += 1;
            }
        };
        let mut iter = self.ooo.iter().copied();
        // simlint: allow(panic-in-kernel): guarded by the is_empty early return just above
        let first = iter.next().expect("non-empty");
        let mut cur = (first, first + 1);
        for s in iter {
            if s == cur.1 {
                cur.1 = s + 1;
            } else {
                emit(cur);
                cur = (s, s + 1);
            }
        }
        emit(cur);
        if let Some(tr) = trigger_run {
            out.push(tr);
        }
        for &r in &low[..n_low] {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn rx() -> TcpReceiver {
        TcpReceiver::new(false)
    }

    #[test]
    fn in_order_acks_each_segment() {
        let mut r = rx();
        for i in 0..5 {
            let res = r.on_data(t(i), i, false, t(i), t(0));
            assert_eq!(res.ack.unwrap().ack, i + 1);
            assert!(!res.completed);
        }
        assert_eq!(r.delivered(), 5);
    }

    #[test]
    fn out_of_order_generates_dupacks() {
        let mut r = rx();
        r.on_data(t(0), 0, false, t(0), t(0));
        // Segment 1 lost; 2, 3, 4 arrive.
        for (i, seq) in [2u64, 3, 4].iter().enumerate() {
            let res = r.on_data(t(10 + i as u64), *seq, false, t(1), t(0));
            assert_eq!(res.ack.unwrap().ack, 1, "dup ack at rcv_nxt");
        }
        assert_eq!(r.out_of_order(), 3);
        // Retransmitted 1 arrives: cumulative ACK jumps to 5.
        let res = r.on_data(t(20), 1, false, t(15), t(0));
        assert_eq!(res.ack.unwrap().ack, 5);
    }

    #[test]
    fn duplicate_segments_acked_but_not_delivered_twice() {
        let mut r = rx();
        r.on_data(t(0), 0, false, t(0), t(0));
        let res = r.on_data(t(1), 0, false, t(0), t(0));
        assert_eq!(res.ack.unwrap().ack, 1);
        assert_eq!(r.duplicates(), 1);
        assert_eq!(r.delivered(), 1);
    }

    #[test]
    fn duplicate_of_buffered_ooo_segment() {
        let mut r = rx();
        r.on_data(t(0), 2, false, t(0), t(0));
        let res = r.on_data(t(1), 2, false, t(0), t(0));
        assert_eq!(r.duplicates(), 1);
        assert_eq!(res.ack.unwrap().ack, 0);
    }

    #[test]
    fn fin_completes_flow_in_order() {
        let mut r = rx();
        r.on_data(t(0), 0, false, t(0), t(0));
        r.on_data(t(1), 1, false, t(0), t(0));
        let res = r.on_data(t(2), 2, true, t(0), t(0));
        assert!(res.completed);
        assert_eq!(r.completed_at(), Some(t(2)));
        assert_eq!(res.ack.unwrap().ack, 3);
    }

    #[test]
    fn fin_out_of_order_completes_only_when_filled() {
        let mut r = rx();
        r.on_data(t(0), 0, false, t(0), t(0));
        // FIN (seq 2) arrives before seq 1.
        let res = r.on_data(t(1), 2, true, t(0), t(0));
        assert!(!res.completed);
        let res = r.on_data(t(2), 1, false, t(0), t(0));
        assert!(res.completed);
        assert_eq!(res.ack.unwrap().ack, 3);
        assert_eq!(r.completed_at(), Some(t(2)));
    }

    #[test]
    fn delayed_ack_withholds_then_releases() {
        let mut r = TcpReceiver::new(true);
        let res = r.on_data(t(0), 0, false, t(0), t(0));
        assert!(res.ack.is_none());
        assert!(res.arm_delack);
        // Second segment releases the ACK for both.
        let res = r.on_data(t(1), 1, false, t(0), t(0));
        assert_eq!(res.ack.unwrap().ack, 2);
        assert!(!res.arm_delack);
    }

    #[test]
    fn delack_timer_flushes_pending() {
        let mut r = TcpReceiver::new(true);
        r.on_data(t(0), 0, false, t(0), t(0));
        let ack = r.on_delack_timer().unwrap();
        assert_eq!(ack.ack, 1);
        assert!(r.on_delack_timer().is_none());
    }

    #[test]
    fn ooo_arrival_cancels_delack_and_acks_now() {
        let mut r = TcpReceiver::new(true);
        r.on_data(t(0), 0, false, t(0), t(0)); // pending delack for 1
        let res = r.on_data(t(1), 2, false, t(0), t(0)); // hole at 1
        assert_eq!(res.ack.unwrap().ack, 1); // immediate dup ack
        assert!(r.on_delack_timer().is_none(), "pending was flushed");
    }

    #[test]
    fn first_created_tracks_earliest() {
        let mut r = rx();
        r.on_data(t(10), 1, false, t(9), t(5));
        r.on_data(t(11), 0, false, t(2), t(1));
        assert_eq!(r.first_created(), Some(t(1)));
    }

    #[test]
    fn ts_echo_matches_triggering_segment() {
        let mut r = rx();
        let res = r.on_data(t(10), 0, false, t(3), t(0));
        assert_eq!(res.ack.unwrap().ts_echo, t(3));
    }

    #[test]
    fn ce_latches_into_next_ack_then_clears() {
        let mut r = rx();
        r.on_ecn(true, false);
        let res = r.on_data(t(0), 0, false, t(0), t(0));
        assert!(res.ack.unwrap().ece, "CE must echo as ECE");
        // Latch consumed: the next un-marked segment ACKs clean.
        let res = r.on_data(t(1), 1, false, t(0), t(0));
        assert!(!res.ack.unwrap().ece);
        // CWR observations are counted, never echoed.
        r.on_ecn(false, true);
        assert_eq!(r.cwr_seen(), 1);
        let res = r.on_data(t(2), 2, false, t(0), t(0));
        assert!(!res.ack.unwrap().ece);
    }

    #[test]
    fn ce_latch_survives_delack_withholding() {
        let mut r = TcpReceiver::new(true);
        // CE on the first (withheld) segment: the latch must not be lost
        // when the second segment's released ACK is built.
        r.on_ecn(true, false);
        let res = r.on_data(t(0), 0, false, t(0), t(0));
        assert!(res.ack.is_none() && res.arm_delack);
        let res = r.on_data(t(1), 1, false, t(0), t(0));
        assert!(res.ack.unwrap().ece, "delayed ACK aggregates the CE mark");
    }

    #[test]
    fn delack_timer_carries_pending_ece() {
        let mut r = TcpReceiver::new(true);
        r.on_ecn(true, false);
        r.on_data(t(0), 0, false, t(0), t(0));
        let ack = r.on_delack_timer().unwrap();
        assert!(ack.ece);
        // Dup ACKs echo the latch too.
        let mut d = rx();
        d.on_data(t(0), 0, false, t(0), t(0));
        d.on_ecn(true, false);
        let res = d.on_data(t(1), 0, false, t(0), t(0));
        assert!(res.ack.unwrap().ece);
    }
}

#[cfg(test)]
mod sack_generation_tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn no_blocks_when_in_order() {
        let mut r = TcpReceiver::new(false);
        let res = r.on_data(t(0), 0, false, t(0), t(0));
        assert!(res.ack.unwrap().sack.is_empty());
    }

    #[test]
    fn single_hole_produces_one_block() {
        let mut r = TcpReceiver::new(false);
        r.on_data(t(0), 0, false, t(0), t(0));
        // 1 missing; 2 and 3 arrive.
        let res = r.on_data(t(1), 2, false, t(0), t(0));
        let sack = res.ack.unwrap().sack;
        assert_eq!(sack.len, 1);
        assert_eq!(sack.blocks[0], (2, 3));
        let res = r.on_data(t(2), 3, false, t(0), t(0));
        let sack = res.ack.unwrap().sack;
        assert_eq!(sack.len, 1);
        assert_eq!(sack.blocks[0], (2, 4));
    }

    #[test]
    fn most_recent_block_first() {
        let mut r = TcpReceiver::new(false);
        r.on_data(t(0), 0, false, t(0), t(0));
        // Holes at 1 and 4: runs {2,3} and {5}.
        r.on_data(t(1), 2, false, t(0), t(0));
        r.on_data(t(2), 3, false, t(0), t(0));
        let res = r.on_data(t(3), 5, false, t(0), t(0));
        let sack = res.ack.unwrap().sack;
        assert_eq!(sack.len, 2);
        // The block containing the triggering segment (5) leads.
        assert_eq!(sack.blocks[0], (5, 6));
        assert_eq!(sack.blocks[1], (2, 4));
    }

    #[test]
    fn at_most_three_blocks_reported() {
        let mut r = TcpReceiver::new(false);
        r.on_data(t(0), 0, false, t(0), t(0));
        // Five disjoint runs: 2, 4, 6, 8, 10.
        for (i, seq) in [2u64, 4, 6, 8, 10].iter().enumerate() {
            r.on_data(t(1 + i as u64), *seq, false, t(0), t(0));
        }
        let res = r.on_data(t(10), 12, false, t(0), t(0));
        let sack = res.ack.unwrap().sack;
        assert_eq!(sack.len, 3);
        assert_eq!(sack.blocks[0], (12, 13)); // triggering block first
    }

    #[test]
    fn blocks_cleared_after_holes_fill() {
        let mut r = TcpReceiver::new(false);
        r.on_data(t(0), 0, false, t(0), t(0));
        r.on_data(t(1), 2, false, t(0), t(0));
        // Retransmitted 1 fills the hole: cumulative ACK, no blocks left.
        let res = r.on_data(t(2), 1, false, t(0), t(0));
        let ack = res.ack.unwrap();
        assert_eq!(ack.ack, 3);
        assert!(ack.sack.is_empty());
    }

    #[test]
    fn duplicate_reports_existing_blocks() {
        let mut r = TcpReceiver::new(false);
        r.on_data(t(0), 0, false, t(0), t(0));
        r.on_data(t(1), 2, false, t(0), t(0));
        // Duplicate of the buffered out-of-order segment.
        let res = r.on_data(t(2), 2, false, t(0), t(0));
        let sack = res.ack.unwrap().sack;
        assert_eq!(sack.len, 1);
        assert_eq!(sack.blocks[0], (2, 3));
    }
}
