//! Property-style tests for the TCP state machines: invariants must hold
//! under arbitrary (adversarial) ACK and timer sequences. Cases are drawn
//! from seeded in-tree generators (`simcore::Rng`), so every failure
//! reproduces from the printed seed.

use simcore::{Rng, SimTime};
use tcpsim::cc::Reno;
use tcpsim::receiver::TcpReceiver;
use tcpsim::sender::{TcpAction, TcpSender};
use tcpsim::seq::{seq_le, seq_lt, SeqUnwrapper};
use tcpsim::TcpConfig;

const CASES: u64 = 64;

/// One scripted input to the sender.
#[derive(Clone, Debug)]
enum Input {
    Ack(u64),
    Rto(u64),
}

fn gen_input(gen: &mut Rng) -> Input {
    if gen.chance(0.5) {
        Input::Ack(gen.u64_below(200))
    } else {
        Input::Rto(gen.u64_below(20))
    }
}

/// Under any input sequence: snd_una is monotone, flight is bounded by
/// the configured receiver window, and the sender never emits a segment
/// beyond the flow length.
#[test]
fn sender_invariants_under_adversarial_input() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x7C_0000 + seed);
        let n_inputs = gen.u64_below(300) as usize;
        let flow_size = 1 + gen.u64_below(149);
        let cfg = TcpConfig::default().with_max_window(32);
        let mut s = TcpSender::new(cfg, Box::new(Reno), Some(flow_size));
        let mut now = SimTime::ZERO;
        let mut all_actions = s.start(now);
        let mut last_una = 0;
        for _ in 0..n_inputs {
            now = now + simcore::SimDuration::from_millis(10);
            let actions = match gen_input(&mut gen) {
                Input::Ack(a) => s.on_ack(now, a, SimTime::ZERO),
                Input::Rto(g) => s.on_rto(now, g),
            };
            assert!(s.snd_una() >= last_una, "seed {seed}: snd_una went backwards");
            last_una = s.snd_una();
            assert!(s.flight() <= 32 + 1, "seed {seed}: flight {} > rwnd", s.flight());
            assert!(s.cwnd() >= 1.0, "seed {seed}");
            all_actions.extend(actions);
        }
        for a in &all_actions {
            if let TcpAction::Send { seq, fin, .. } = a {
                assert!(*seq < flow_size, "seed {seed}: sent past the end");
                assert_eq!(*fin, *seq + 1 == flow_size, "seed {seed}");
            }
        }
    }
}

/// A receiver fed any permutation of a flow's segments delivers each
/// exactly once, ends with rcv_nxt == len, and completes iff the FIN
/// has arrived in order.
#[test]
fn receiver_handles_any_arrival_order() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x7D_0000 + seed);
        let n = 1 + gen.u64_below(39) as usize;
        let order: Vec<usize> = (0..n).map(|_| gen.u64_below(40) as usize).collect();
        // An arrival order: a shuffled prefix plus guaranteed full coverage
        // afterwards.
        let len = 40u64;
        let mut r = TcpReceiver::new(false);
        let mut t = 0u64;
        for &i in &order {
            t += 1;
            let seq = i as u64;
            r.on_data(SimTime::from_millis(t), seq, seq + 1 == len, SimTime::ZERO, SimTime::ZERO);
        }
        // Deliver everything (duplicates are fine).
        for seq in 0..len {
            t += 1;
            let res = r.on_data(SimTime::from_millis(t), seq, seq + 1 == len, SimTime::ZERO, SimTime::ZERO);
            if let Some(ack) = res.ack {
                assert!(ack.ack <= len, "seed {seed}");
            }
        }
        assert_eq!(r.rcv_nxt(), len, "seed {seed}");
        assert!(r.completed_at().is_some(), "seed {seed}");
        assert_eq!(r.delivered(), len, "seed {seed}");
    }
}

/// Wrap-safe comparisons are a strict total order on any window of
/// ±2^31 around a base.
#[test]
fn seq_comparisons_consistent() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x7E_0000 + seed);
        let base = gen.next_u64() as u32;
        let a = gen.u64_below(1000) as u32;
        let b = gen.u64_below(1000) as u32;
        let x = base.wrapping_add(a);
        let y = base.wrapping_add(b);
        assert_eq!(seq_lt(x, y), a < b, "seed {seed}");
        assert_eq!(seq_le(x, y), a <= b, "seed {seed}");
    }
}

/// The unwrapper recovers any monotone sequence with bounded steps,
/// across wraps.
#[test]
fn unwrapper_recovers_monotone_streams() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x7F_0000 + seed);
        let start = gen.next_u64() as u32;
        let n = 1 + gen.u64_below(99) as usize;
        let mut u = SeqUnwrapper::new();
        let mut expected = start as u64;
        assert_eq!(u.unwrap(start), expected, "seed {seed}");
        for _ in 0..n {
            expected += gen.u64_below(100_000);
            let wire = expected as u32;
            assert_eq!(u.unwrap(wire), expected, "seed {seed}");
        }
    }
}
