//! Property tests for the TCP state machines: invariants must hold under
//! arbitrary (adversarial) ACK and timer sequences.

use proptest::prelude::*;
use simcore::SimTime;
use tcpsim::cc::Reno;
use tcpsim::receiver::TcpReceiver;
use tcpsim::sender::{TcpAction, TcpSender};
use tcpsim::seq::{seq_le, seq_lt, SeqUnwrapper};
use tcpsim::TcpConfig;

/// One scripted input to the sender.
#[derive(Clone, Debug)]
enum Input {
    Ack(u64),
    Rto(u64),
}

fn input_strategy() -> impl Strategy<Value = Input> {
    prop_oneof![
        (0u64..200).prop_map(Input::Ack),
        (0u64..20).prop_map(Input::Rto),
    ]
}

proptest! {
    /// Under any input sequence: snd_una is monotone, flight is bounded by
    /// the configured receiver window, and the sender never emits a segment
    /// beyond the flow length.
    #[test]
    fn sender_invariants_under_adversarial_input(
        inputs in prop::collection::vec(input_strategy(), 0..300),
        flow_size in 1u64..150,
    ) {
        let cfg = TcpConfig::default().with_max_window(32);
        let mut s = TcpSender::new(cfg, Box::new(Reno), Some(flow_size));
        let mut now = SimTime::ZERO;
        let mut all_actions = s.start(now);
        let mut last_una = 0;
        for input in inputs {
            now = now + simcore::SimDuration::from_millis(10);
            let actions = match input {
                Input::Ack(a) => s.on_ack(now, a, SimTime::ZERO),
                Input::Rto(gen) => s.on_rto(now, gen),
            };
            prop_assert!(s.snd_una() >= last_una, "snd_una went backwards");
            last_una = s.snd_una();
            prop_assert!(s.flight() <= 32 + 1, "flight {} > rwnd", s.flight());
            prop_assert!(s.cwnd() >= 1.0);
            all_actions.extend(actions);
        }
        for a in &all_actions {
            if let TcpAction::Send { seq, fin, .. } = a {
                prop_assert!(*seq < flow_size, "sent past the end");
                prop_assert_eq!(*fin, *seq + 1 == flow_size);
            }
        }
    }

    /// A receiver fed any permutation of a flow's segments delivers each
    /// exactly once, ends with rcv_nxt == len, and completes iff the FIN
    /// has arrived in order.
    #[test]
    fn receiver_handles_any_arrival_order(order in prop::collection::vec(0usize..40, 1..40)) {
        // Build an arrival order: a shuffled prefix plus guaranteed full
        // coverage afterwards.
        let len = 40u64;
        let mut r = TcpReceiver::new(false);
        let mut t = 0u64;
        for &i in &order {
            t += 1;
            let seq = i as u64;
            r.on_data(SimTime::from_millis(t), seq, seq + 1 == len, SimTime::ZERO, SimTime::ZERO);
        }
        // Deliver everything (duplicates are fine).
        for seq in 0..len {
            t += 1;
            let res = r.on_data(SimTime::from_millis(t), seq, seq + 1 == len, SimTime::ZERO, SimTime::ZERO);
            if let Some(ack) = res.ack {
                prop_assert!(ack.ack <= len);
            }
        }
        prop_assert_eq!(r.rcv_nxt(), len);
        prop_assert!(r.completed_at().is_some());
        prop_assert_eq!(r.delivered(), len);
    }

    /// Wrap-safe comparisons are a strict total order on any window of
    /// ±2^31 around a base.
    #[test]
    fn seq_comparisons_consistent(base in any::<u32>(), a in 0u32..1000, b in 0u32..1000) {
        let x = base.wrapping_add(a);
        let y = base.wrapping_add(b);
        prop_assert_eq!(seq_lt(x, y), a < b);
        prop_assert_eq!(seq_le(x, y), a <= b);
    }

    /// The unwrapper recovers any monotone sequence with bounded steps,
    /// across wraps.
    #[test]
    fn unwrapper_recovers_monotone_streams(
        start in any::<u32>(),
        steps in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let mut u = SeqUnwrapper::new();
        let mut expected = start as u64;
        prop_assert_eq!(u.unwrap(start), expected);
        for s in steps {
            expected += s;
            let wire = expected as u32;
            prop_assert_eq!(u.unwrap(wire), expected);
        }
    }
}
