//! Property-style tests for the SACK sender: invariants under adversarial
//! ACK streams with arbitrary SACK blocks, drawn from seeded in-tree
//! generators (`simcore::Rng`).

use simcore::{Rng, SimTime};
use tcpsim::machine::AckInfo;
use tcpsim::receiver::SackRanges;
use tcpsim::sack::SackSender;
use tcpsim::sender::TcpAction;
use tcpsim::TcpConfig;

const CASES: u64 = 64;

#[derive(Clone, Debug)]
enum Input {
    Ack { ack: u64, blocks: Vec<(u64, u64)> },
    Rto(u64),
}

fn gen_input(gen: &mut Rng) -> Input {
    if gen.chance(0.5) {
        let ack = gen.u64_below(150);
        let n_blocks = gen.u64_below(3) as usize;
        let blocks = (0..n_blocks)
            .map(|_| {
                let s = gen.u64_below(150);
                let w = gen.u64_below(20);
                (s, s + w.max(1))
            })
            .collect();
        Input::Ack { ack, blocks }
    } else {
        Input::Rto(gen.u64_below(30))
    }
}

#[test]
fn sack_sender_invariants() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x5A_0000 + seed);
        let n_inputs = gen.u64_below(250) as usize;
        let flow_size = 1 + gen.u64_below(119);
        let cfg = TcpConfig::default().with_max_window(24);
        let mut s = SackSender::new(cfg, Some(flow_size));
        let mut now = SimTime::ZERO;
        let mut actions = s.start(now);
        let mut last_una = 0;
        for _ in 0..n_inputs {
            now = now + simcore::SimDuration::from_millis(7);
            let out = match gen_input(&mut gen) {
                Input::Ack { ack, blocks } => {
                    let mut sack = SackRanges::default();
                    for b in blocks.iter().take(3) {
                        sack.blocks[sack.len as usize] = *b;
                        sack.len += 1;
                    }
                    s.on_ack(now, &AckInfo { ack, ts_echo: SimTime::ZERO, sack, ece: false })
                }
                Input::Rto(g) => s.on_rto(now, g),
            };
            assert!(s.snd_una() >= last_una, "seed {seed}: snd_una regressed");
            last_una = s.snd_una();
            assert!(s.snd_una() <= s.next_seq(), "seed {seed}");
            assert!(s.cwnd() >= 1.0, "seed {seed}");
            assert!(s.flight() <= 120, "seed {seed}: runaway flight");
            actions.extend(out);
        }
        // No segment beyond the flow; FIN exactly on the last segment.
        for a in &actions {
            if let TcpAction::Send { seq, fin, .. } = a {
                assert!(*seq < flow_size, "seed {seed}");
                assert_eq!(*fin, *seq + 1 == flow_size, "seed {seed}");
            }
        }
        // If completed, everything was acknowledged.
        if s.is_completed() {
            assert!(s.snd_una() >= flow_size, "seed {seed}");
        }
    }
}
