//! Property tests for the SACK sender: invariants under adversarial ACK
//! streams with arbitrary SACK blocks.

use proptest::prelude::*;
use simcore::SimTime;
use tcpsim::machine::{AckInfo, SenderMachine};
use tcpsim::receiver::SackRanges;
use tcpsim::sack::SackSender;
use tcpsim::sender::TcpAction;
use tcpsim::TcpConfig;

#[derive(Clone, Debug)]
enum Input {
    Ack { ack: u64, blocks: Vec<(u64, u64)> },
    Rto(u64),
}

fn input_strategy() -> impl Strategy<Value = Input> {
    prop_oneof![
        (
            0u64..150,
            prop::collection::vec((0u64..150, 0u64..20), 0..3)
        )
            .prop_map(|(ack, spans)| Input::Ack {
                ack,
                blocks: spans
                    .into_iter()
                    .map(|(s, w)| (s, s + w.max(1)))
                    .collect(),
            }),
        (0u64..30).prop_map(Input::Rto),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn sack_sender_invariants(
        inputs in prop::collection::vec(input_strategy(), 0..250),
        flow_size in 1u64..120,
    ) {
        let cfg = TcpConfig::default().with_max_window(24);
        let mut s = SackSender::new(cfg, Some(flow_size));
        let mut now = SimTime::ZERO;
        let mut actions = s.start(now);
        let mut last_una = 0;
        for input in inputs {
            now = now + simcore::SimDuration::from_millis(7);
            let out = match input {
                Input::Ack { ack, blocks } => {
                    let mut sack = SackRanges::default();
                    for b in blocks.iter().take(3) {
                        sack.blocks[sack.len as usize] = *b;
                        sack.len += 1;
                    }
                    s.on_ack(now, &AckInfo { ack, ts_echo: SimTime::ZERO, sack })
                }
                Input::Rto(gen) => s.on_rto(now, gen),
            };
            prop_assert!(s.snd_una() >= last_una, "snd_una regressed");
            last_una = s.snd_una();
            prop_assert!(s.snd_una() <= s.next_seq());
            prop_assert!(s.cwnd() >= 1.0);
            prop_assert!(s.flight() <= 120, "runaway flight");
            actions.extend(out);
        }
        // No segment beyond the flow; FIN exactly on the last segment.
        for a in &actions {
            if let TcpAction::Send { seq, fin, .. } = a {
                prop_assert!(*seq < flow_size);
                prop_assert_eq!(*fin, *seq + 1 == flow_size);
            }
        }
        // If completed, everything was acknowledged.
        if s.is_completed() {
            prop_assert!(s.snd_una() >= flow_size);
        }
    }
}
