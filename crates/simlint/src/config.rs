//! `simlint.toml` — configuration for the determinism contract.
//!
//! simlint is dependency-free by design (it guards the build that builds
//! everything else), so this module includes a hand-rolled parser for the
//! small TOML subset the config actually uses: `[section]` headers,
//! `key = value` with boolean, string, and single-line string-array values,
//! and `#` comments. Unknown sections or keys are hard errors — a typo in a
//! lint config must not silently disable a rule.

use crate::rules::RuleId;
use std::collections::BTreeMap;
use std::path::Path;

/// Per-rule settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSettings {
    /// Whether the rule is checked at all.
    pub enabled: bool,
    /// Whether code inside `#[cfg(test)]` modules is exempt.
    pub skip_tests: bool,
}

impl Default for RuleSettings {
    fn default() -> Self {
        RuleSettings {
            enabled: true,
            skip_tests: false,
        }
    }
}

/// The full linter configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    /// Directories to scan, relative to the workspace root.
    pub roots: Vec<String>,
    /// Settings per rule (every rule has an entry).
    pub rules: BTreeMap<RuleId, RuleSettings>,
}

impl Config {
    /// The default contract: scan the four simulation crates, all rules on.
    pub fn default_contract() -> Config {
        Config {
            roots: vec![
                "crates/simcore".to_string(),
                "crates/netsim".to_string(),
                "crates/tcpsim".to_string(),
                "crates/traffic".to_string(),
            ],
            rules: RuleId::ALL
                .into_iter()
                .map(|r| (r, RuleSettings::default()))
                .collect(),
        }
    }

    /// Loads and parses a `simlint.toml`.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Config::from_toml(&text)
    }

    /// Parses config text, starting from [`Config::default_contract`] and
    /// applying overrides.
    pub fn from_toml(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default_contract();
        let mut section: Option<Section> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            let err = |msg: String| format!("simlint.toml:{}: {msg}", lineno + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = Some(match name.trim() {
                    "scan" => Section::Scan,
                    other => match other.strip_prefix("rules.") {
                        Some(rule_name) => {
                            let rule = RuleId::parse(rule_name.trim()).ok_or_else(|| {
                                err(format!("unknown rule `{}`", rule_name.trim()))
                            })?;
                            Section::Rule(rule)
                        }
                        None => return Err(err(format!("unknown section `[{other}]`"))),
                    },
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            match section {
                None => return Err(err(format!("key `{key}` outside any section"))),
                Some(Section::Scan) => match key {
                    "roots" => cfg.roots = parse_string_array(value).map_err(err)?,
                    _ => return Err(err(format!("unknown key `{key}` in [scan]"))),
                },
                Some(Section::Rule(rule)) => {
                    let settings = cfg.rules.get_mut(&rule).expect("all rules present");
                    match key {
                        "enabled" => settings.enabled = parse_bool(value).map_err(err)?,
                        "skip_tests" => settings.skip_tests = parse_bool(value).map_err(err)?,
                        _ => {
                            return Err(err(format!(
                                "unknown key `{key}` in [rules.{}]",
                                rule.name()
                            )))
                        }
                    }
                }
            }
        }
        Ok(cfg)
    }

    /// The settings for one rule.
    pub fn rule(&self, id: RuleId) -> RuleSettings {
        self.rules.get(&id).copied().unwrap_or_default()
    }
}

#[derive(Clone, Copy)]
enum Section {
    Scan,
    Rule(RuleId),
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected `true` or `false`, got `{other}`")),
    }
}

fn parse_string(v: &str) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{v}`"))?;
    Ok(inner.to_string())
}

fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[...]` array, got `{v}`"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_contract_covers_all_rules() {
        let cfg = Config::default_contract();
        for r in RuleId::ALL {
            assert!(cfg.rule(r).enabled);
            assert!(!cfg.rule(r).skip_tests);
        }
        assert_eq!(cfg.roots.len(), 4);
    }

    #[test]
    fn parses_overrides() {
        let cfg = Config::from_toml(
            r#"
            # comment
            [scan]
            roots = ["crates/a", "crates/b"] # trailing comment

            [rules.lossy-cast]
            enabled = false

            [rules.wall-clock]
            skip_tests = true
            "#,
        )
        .unwrap();
        assert_eq!(cfg.roots, vec!["crates/a", "crates/b"]);
        assert!(!cfg.rule(RuleId::LossyCast).enabled);
        assert!(cfg.rule(RuleId::WallClock).skip_tests);
        assert!(cfg.rule(RuleId::HashContainer).enabled);
    }

    #[test]
    fn rejects_typos() {
        assert!(Config::from_toml("[rules.hash-contanier]\nenabled = false").is_err());
        assert!(Config::from_toml("[scan]\nroot = [\"x\"]").is_err());
        assert!(Config::from_toml("[rules.wall-clock]\nenable = true").is_err());
        assert!(Config::from_toml("stray = true").is_err());
    }
}
