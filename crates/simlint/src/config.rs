//! `simlint.toml` — configuration for the determinism contract.
//!
//! simlint is dependency-free by design (it guards the build that builds
//! everything else), so this module includes a hand-rolled parser for the
//! small TOML subset the config actually uses: `[section]` headers,
//! `key = value` with boolean, string, and single-line string-array values,
//! and `#` comments. Unknown sections or keys are hard errors — a typo in a
//! lint config must not silently disable a rule.

use crate::rules::{RuleId, Severity};
use std::collections::BTreeMap;
use std::path::Path;

/// Per-rule settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSettings {
    /// Whether the rule is checked at all.
    pub enabled: bool,
    /// Whether code inside `#[cfg(test)]` modules is exempt.
    pub skip_tests: bool,
    /// Effective severity (defaults per rule, overridable).
    pub severity: Severity,
}

impl RuleSettings {
    /// The built-in defaults for one rule: enabled, with the rule's own
    /// `skip_tests`/severity defaults (`panic-in-kernel` skips tests and
    /// warns; `float-reduction` warns; everything else denies).
    pub fn for_rule(rule: RuleId) -> RuleSettings {
        RuleSettings {
            enabled: true,
            skip_tests: rule.default_skip_tests(),
            severity: rule.default_severity(),
        }
    }
}

/// The full linter configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    /// Directories to scan, relative to the workspace root.
    pub roots: Vec<String>,
    /// The subset of roots holding single-threaded simulation-kernel code;
    /// kernel-only rules (`float-reduction`, `shared-mut-state`,
    /// `panic-in-kernel`) apply only to files under these.
    pub kernel_roots: Vec<String>,
    /// Settings per rule (every rule has an entry).
    pub rules: BTreeMap<RuleId, RuleSettings>,
}

impl Config {
    /// The default contract: scan the four simulation crates (all of them
    /// kernel roots), all rules on with their per-rule defaults.
    pub fn default_contract() -> Config {
        let kernel: Vec<String> = [
            "crates/simcore",
            "crates/netsim",
            "crates/tcpsim",
            "crates/traffic",
        ]
        .into_iter()
        .map(str::to_string)
        .collect();
        Config {
            roots: kernel.clone(),
            kernel_roots: kernel,
            rules: RuleId::ALL
                .into_iter()
                .map(|r| (r, RuleSettings::for_rule(r)))
                .collect(),
        }
    }

    /// Loads and parses a `simlint.toml`.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Config::from_toml(&text)
    }

    /// Parses config text, starting from [`Config::default_contract`] and
    /// applying overrides.
    pub fn from_toml(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default_contract();
        let mut section: Option<Section> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            let err = |msg: String| format!("simlint.toml:{}: {msg}", lineno + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = Some(match name.trim() {
                    "scan" => Section::Scan,
                    other => match other.strip_prefix("rules.") {
                        Some(rule_name) => {
                            let rule = RuleId::parse(rule_name.trim()).ok_or_else(|| {
                                err(format!("unknown rule `{}`", rule_name.trim()))
                            })?;
                            Section::Rule(rule)
                        }
                        None => return Err(err(format!("unknown section `[{other}]`"))),
                    },
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            match section {
                None => return Err(err(format!("key `{key}` outside any section"))),
                Some(Section::Scan) => match key {
                    "roots" => cfg.roots = parse_string_array(value).map_err(err)?,
                    "kernel_roots" => {
                        cfg.kernel_roots = parse_string_array(value).map_err(err)?
                    }
                    _ => return Err(err(format!("unknown key `{key}` in [scan]"))),
                },
                Some(Section::Rule(rule)) => {
                    let settings = cfg.rules.get_mut(&rule).expect("all rules present");
                    match key {
                        "enabled" => settings.enabled = parse_bool(value).map_err(err)?,
                        "skip_tests" => settings.skip_tests = parse_bool(value).map_err(err)?,
                        "severity" => {
                            let name = parse_string(value).map_err(&err)?;
                            settings.severity = Severity::parse(&name).ok_or_else(|| {
                                err(format!("unknown severity `{name}` (deny|warn)"))
                            })?;
                        }
                        _ => {
                            return Err(err(format!(
                                "unknown key `{key}` in [rules.{}]",
                                rule.name()
                            )))
                        }
                    }
                }
            }
        }
        for root in &cfg.kernel_roots {
            if !cfg.roots.contains(root) {
                return Err(format!(
                    "simlint.toml: kernel root `{root}` is not in [scan] roots"
                ));
            }
        }
        Ok(cfg)
    }

    /// The settings for one rule.
    pub fn rule(&self, id: RuleId) -> RuleSettings {
        self.rules
            .get(&id)
            .copied()
            .unwrap_or_else(|| RuleSettings::for_rule(id))
    }

    /// True iff a reported file label falls under one of the kernel roots.
    pub fn is_kernel_file(&self, label: &str) -> bool {
        self.kernel_roots
            .iter()
            .any(|r| label == r || label.starts_with(&format!("{r}/")))
    }
}

#[derive(Clone, Copy)]
enum Section {
    Scan,
    Rule(RuleId),
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected `true` or `false`, got `{other}`")),
    }
}

fn parse_string(v: &str) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{v}`"))?;
    Ok(inner.to_string())
}

fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[...]` array, got `{v}`"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_contract_covers_all_rules() {
        let cfg = Config::default_contract();
        for r in RuleId::ALL {
            assert!(cfg.rule(r).enabled);
            assert_eq!(cfg.rule(r).skip_tests, r.default_skip_tests());
            assert_eq!(cfg.rule(r).severity, r.default_severity());
        }
        assert_eq!(cfg.roots.len(), 4);
        assert_eq!(cfg.kernel_roots, cfg.roots);
        // Only panic-in-kernel skips tests by default.
        assert!(cfg.rule(RuleId::PanicInKernel).skip_tests);
        assert!(!cfg.rule(RuleId::HashContainer).skip_tests);
    }

    #[test]
    fn parses_overrides() {
        let cfg = Config::from_toml(
            r#"
            # comment
            [scan]
            roots = ["crates/a", "crates/b"] # trailing comment
            kernel_roots = ["crates/a"]

            [rules.lossy-cast]
            enabled = false

            [rules.wall-clock]
            skip_tests = true

            [rules.hot-path-alloc]
            severity = "warn"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.roots, vec!["crates/a", "crates/b"]);
        assert_eq!(cfg.kernel_roots, vec!["crates/a"]);
        assert!(!cfg.rule(RuleId::LossyCast).enabled);
        assert!(cfg.rule(RuleId::WallClock).skip_tests);
        assert_eq!(cfg.rule(RuleId::HotPathAlloc).severity, Severity::Warn);
        assert!(cfg.rule(RuleId::HashContainer).enabled);
    }

    #[test]
    fn rejects_typos() {
        assert!(Config::from_toml("[rules.hash-contanier]\nenabled = false").is_err());
        assert!(Config::from_toml("[scan]\nroot = [\"x\"]").is_err());
        assert!(Config::from_toml("[rules.wall-clock]\nenable = true").is_err());
        assert!(Config::from_toml("[rules.wall-clock]\nseverity = \"loud\"").is_err());
        assert!(Config::from_toml("stray = true").is_err());
    }

    #[test]
    fn kernel_roots_must_be_scanned() {
        let res = Config::from_toml("[scan]\nroots = [\"crates/a\"]\nkernel_roots = [\"crates/b\"]");
        assert!(res.is_err(), "{res:?}");
    }

    #[test]
    fn kernel_file_matching() {
        let cfg = Config::default_contract();
        assert!(cfg.is_kernel_file("crates/simcore/src/lib.rs"));
        assert!(cfg.is_kernel_file("crates/netsim/src/queue.rs"));
        assert!(!cfg.is_kernel_file("crates/core/src/exec.rs"));
        assert!(!cfg.is_kernel_file("crates/simcore2/src/lib.rs"));
        assert!(!cfg.is_kernel_file("test.rs"));
    }
}
