//! # simlint — static enforcement of the simulator's determinism contract
//!
//! Every quantitative claim this repository reproduces (the `RTT·C/√n`
//! headline, the M/G/1 short-flow bound, the `ℓ ≈ 0.76/W²` loss curve) rests
//! on the discrete-event simulator being bit-for-bit deterministic under a
//! fixed seed. `simlint` is a dependency-free, workspace-aware linter that
//! scans the simulation crates (plus the driver layer) and rejects
//! constructs that silently break that contract.
//!
//! ## Architecture (v2)
//!
//! * [`lex`] — a token lexer for Rust: raw/byte/C strings, nested block
//!   comments, char-vs-lifetime disambiguation, float-vs-int literals. It
//!   produces a token stream, per-line comment text (for waiver parsing),
//!   and per-line blanked code (for the line-shaped matchers).
//! * [`graph`] — a per-crate symbol/call graph built from the tokens: `fn`
//!   bodies, `#[cfg(test)]` regions, and `// simlint: hot-path` regions,
//!   with hotness propagated one call level deep so an allocation in a
//!   helper *called from* a marked region is still a finding.
//! * [`rules`] — the thirteen rules (see [`RuleId::ALL`]), each with a
//!   default severity ([`rules::Severity`]): `deny` rules break determinism
//!   today, `warn` rules break it under planned parallel-DES work. The
//!   authoritative rule table (rationale, scope, waiver policy) lives in
//!   `DESIGN.md` §7.
//! * [`scan`] — scoping (test regions, kernel-only rules, hot regions),
//!   waiver application, and the waiver audit: every
//!   `// simlint: allow(rule): justification` must carry a justification,
//!   and a waiver that suppresses nothing is reported *stale*.
//! * [`report`] — the byte-stable `artifacts/simlint.json` report, the
//!   committed `artifacts/simlint_baseline.json`, and the ratchet
//!   (violation counts may only go down; new waivers require a deliberate
//!   baseline regeneration).
//!
//! Rules are configured by `simlint.toml` at the workspace root and waived
//! per line (`// simlint: allow(rule): why`), for the next line (a waiver
//! comment on a line of its own), or per file
//! (`// simlint: allow-file(rule): why`).
//!
//! The linter runs as a binary (`cargo run -p simlint`, see `main.rs` for
//! the `--format json` / `--ratchet` / `--write-baseline` flags) and as a
//! library from the tier-1 test `tests/static_analysis.rs`, which asserts
//! zero violations. Its dynamic counterpart is `netsim::Auditor`, which
//! checks at run time what a static pass cannot see (packet conservation,
//! queue bounds, event-time monotonicity).

pub mod config;
pub mod graph;
pub mod lex;
pub mod report;
pub mod rules;
pub mod scan;

pub use config::{Config, RuleSettings};
pub use report::{parse_baseline, ratchet, render_baseline, render_report, Baseline};
pub use rules::{RuleId, Severity};
pub use scan::{
    analyze_source, analyze_workspace, check_source, check_workspace, Analysis, Violation, Waiver,
    WaiverKind,
};
