//! # simlint — static enforcement of the simulator's determinism contract
//!
//! Every quantitative claim this repository reproduces (the `RTT·C/√n`
//! headline, the M/G/1 short-flow bound, the `ℓ ≈ 0.76/W²` loss curve) rests
//! on the discrete-event simulator being bit-for-bit deterministic under a
//! fixed seed. `simlint` is a dependency-free, workspace-aware linter that
//! scans the simulation crates (`simcore`, `netsim`, `tcpsim`, `traffic`)
//! and rejects constructs that silently break that contract:
//!
//! * [`RuleId::HashContainer`] (`hash-container`) — no `HashMap`/`HashSet`
//!   in sim crates. Their iteration order depends on a per-process hasher
//!   seed; use `BTreeMap`/`BTreeSet`/`Vec` or a sorted wrapper instead.
//! * [`RuleId::WallClock`] (`wall-clock`) — no wall-clock or OS entropy
//!   (`Instant::now`, `SystemTime`, `rand::thread_rng`, `std::thread`)
//!   inside simulation code. All time is `simcore::SimTime`; all randomness
//!   flows from the master seed through `simcore::Rng`.
//! * [`RuleId::LossyCast`] (`lossy-cast`) — no lossy `as` casts on sequence
//!   numbers or byte counters (narrowing to `u32`/`u16`/`u8`/`i32`/…).
//!   Wrapping 32-bit wire arithmetic lives in `tcpsim::seq`, the one waived
//!   module.
//! * [`RuleId::FloatTimeEq`] (`float-time-eq`) — no raw `==`/`!=` on
//!   float-projected simulated time (`as_secs_f64()`); compare `SimTime`
//!   values, which are exact integer nanoseconds.
//!
//! Rules are configured by `simlint.toml` at the workspace root and can be
//! waived per line (`// simlint: allow(rule)`), for the next line (a waiver
//! comment on a line of its own), or per file (`// simlint:
//! allow-file(rule)`).
//!
//! The linter runs as a binary (`cargo run -p simlint`) and as a library
//! from the tier-1 test `tests/static_analysis.rs`, which asserts zero
//! violations. Its dynamic counterpart is `netsim::Auditor`, which checks at
//! run time what a static pass cannot see (packet conservation, queue
//! bounds, event-time monotonicity).

pub mod config;
pub mod rules;
pub mod scan;

pub use config::{Config, RuleSettings};
pub use rules::RuleId;
pub use scan::{check_source, check_workspace, Violation};
