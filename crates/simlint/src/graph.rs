//! Lightweight per-crate symbol and call graph.
//!
//! Built from the token stream ([`crate::lex`]), not from a full parse: the
//! graph knows (a) every `fn` definition with its body token/line range,
//! whether it sits inside `#[cfg(test)]` code, and whether it is directly
//! marked `// simlint: hot-path`; and (b) every call site inside a hot
//! region, resolved *by name* against the functions of the same crate.
//!
//! That name resolution is deliberately conservative and one level deep:
//! an allocation in a function called from a marked region is a finding
//! even though the function body carries no marker itself — the
//! "interprocedural loophole" the marker-scoped rule used to have. Method
//! calls (`q.transmit(pkt)`) resolve to any crate function of that name;
//! calls through common std names (`push`, `clone`, `new`, …) and
//! std-typed paths (`Vec::…`, `mem::…`) are excluded so the std library
//! does not taint same-named crate functions. When several crate functions
//! share a name, *all* of them are treated as hot (erring toward
//! flagging; a waiver documents the exceptions).

use crate::lex::{LexedFile, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// How a function participates in hot-path checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hotness {
    /// Not reachable from any marked region (within one call level).
    No,
    /// Its own body is inside a `// simlint: hot-path` region.
    Direct,
    /// Called (one level) from a marked region; the string names the call
    /// site, e.g. `crates/netsim/src/sim.rs:401`.
    Transitive(String),
}

/// One `fn` definition discovered in a file.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's bare name.
    pub name: String,
    /// Index of the file (into the slice passed to [`CrateGraph::build`]).
    pub file: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}`.
    pub body_close: usize,
    /// 1-based line of the opening `{`.
    pub open_line: usize,
    /// 1-based line of the closing `}`.
    pub close_line: usize,
    /// Whether the definition sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Hot-path status after the interprocedural pass.
    pub hot: Hotness,
}

/// A contiguous token region within one file.
#[derive(Clone, Debug)]
pub struct Region {
    /// File index.
    pub file: usize,
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}` (or last token if unbalanced).
    pub close: usize,
    /// 1-based line of the opening `{`.
    pub open_line: usize,
    /// 1-based line of the closing `}`.
    pub close_line: usize,
}

impl Region {
    /// True iff token index `t` lies inside the region (inclusive).
    pub fn contains(&self, file: usize, t: usize) -> bool {
        self.file == file && t >= self.open && t <= self.close
    }
}

/// The per-crate analysis product.
#[derive(Clone, Debug, Default)]
pub struct CrateGraph {
    /// Every function definition in the crate's files.
    pub fns: Vec<FnDef>,
    /// Directly marked `// simlint: hot-path` regions.
    pub hot_regions: Vec<Region>,
    /// `#[cfg(test)]` / `#[test]` regions.
    pub test_regions: Vec<Region>,
}

/// Call-edge names that are never resolved to crate functions: overwhelming
/// std-method traffic (`v.push(x)`) or constructor idioms whose allocation
/// profile is governed by the direct alloc matchers, not the call graph.
const SKIP_CALLEES: [&str; 40] = [
    "new", "default", "from", "into", "clone", "fmt", "eq", "ne", "cmp", "partial_cmp",
    "total_cmp", "hash", "drop", "with_capacity", "to_string", "to_owned", "as_ref", "as_mut",
    "borrow", "borrow_mut", "deref", "deref_mut", "next", "len", "is_empty", "get", "get_mut",
    "insert", "remove", "contains", "contains_key", "clear", "extend", "push", "pop", "iter",
    "iter_mut", "into_iter", "min", "max",
];

/// Path-call prefixes (`Prefix::name(..)`) that denote std types/modules, so
/// the call never resolves to a crate function.
const STD_PREFIXES: [&str; 38] = [
    "std", "core", "alloc", "mem", "ptr", "fmt", "cmp", "iter", "slice", "str", "char", "Vec",
    "Box", "String", "VecDeque", "BinaryHeap", "BTreeMap", "BTreeSet", "Option", "Result",
    "Some", "Ok", "Err", "Rc", "Arc", "Cell", "RefCell", "Ordering", "Duration", "Reverse",
    "Wrapping", "f32", "f64", "u8", "u16", "u32", "u64", "usize",
];

/// Rust keywords (and ubiquitous constructors) that can precede `(` without
/// being a call to a crate function.
const NON_CALL_IDENTS: [&str; 24] = [
    "fn", "if", "else", "match", "while", "for", "loop", "return", "let", "mut", "ref", "in",
    "as", "use", "mod", "pub", "impl", "where", "move", "unsafe", "dyn", "Some", "Ok", "Err",
];

impl CrateGraph {
    /// Builds the graph for one crate from its lexed files (with display
    /// labels) plus the per-file `// simlint: hot-path` marker lines
    /// (1-based).
    pub fn build(files: &[&LexedFile], labels: &[&str], marker_lines: &[Vec<usize>]) -> CrateGraph {
        let mut g = CrateGraph::default();
        for (fi, lf) in files.iter().enumerate() {
            g.scan_structure(fi, lf, &marker_lines[fi]);
        }
        g.propagate_hotness(files, labels);
        g
    }

    /// Finds brace-matched hot/test regions and `fn` bodies in one file.
    fn scan_structure(&mut self, file: usize, lf: &LexedFile, markers: &[usize]) {
        let toks = &lf.toks;
        // Matching close brace for each open brace token index.
        let close_of = brace_matches(lf);

        let mut markers: Vec<usize> = markers.to_vec();
        markers.sort_unstable();
        let mut next_marker = 0usize;

        // Attribute handling: after `#[…test…]`, the next `{` opens a test
        // region (this covers both `#[cfg(test)] mod tests {` and
        // `#[test] fn case() {`). `not` anywhere in the attribute (e.g.
        // `#[cfg(not(test))]`) disarms it.
        let mut test_pending = false;

        let mut i = 0usize;
        while i < toks.len() {
            match &toks[i].tok {
                Tok::Punct('#') if toks.get(i + 1).is_some_and(|t| t.tok.is_punct('[')) => {
                    // Scan the attribute's bracket span.
                    let mut depth = 0i64;
                    let mut j = i + 1;
                    let mut saw_test = false;
                    let mut saw_not = false;
                    while j < toks.len() {
                        match &toks[j].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Tok::Ident(s) if s == "test" => saw_test = true,
                            Tok::Ident(s) if s == "not" => saw_not = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if saw_test && !saw_not {
                        test_pending = true;
                    }
                    i = j + 1;
                    continue;
                }
                Tok::Ident(kw) if kw == "fn" => {
                    if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                        // Find the body `{` (or `;` for a bodyless decl) at
                        // paren depth 0.
                        let mut paren = 0i64;
                        let mut j = i + 2;
                        let mut body = None;
                        while j < toks.len() {
                            match &toks[j].tok {
                                Tok::Punct('(') => paren += 1,
                                Tok::Punct(')') => paren -= 1,
                                Tok::Punct(';') if paren == 0 => break,
                                Tok::Punct('{') if paren == 0 => {
                                    body = Some(j);
                                    break;
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        if let Some(open) = body {
                            let close = close_of.get(&open).copied().unwrap_or(toks.len() - 1);
                            self.fns.push(FnDef {
                                name: name.clone(),
                                file,
                                body_open: open,
                                body_close: close,
                                open_line: toks[open].line,
                                close_line: toks[close].line,
                                in_test: false, // filled below
                                hot: Hotness::No,
                            });
                        }
                    }
                }
                Tok::Punct('{') => {
                    let close = close_of.get(&i).copied().unwrap_or(toks.len() - 1);
                    let region = Region {
                        file,
                        open: i,
                        close,
                        open_line: toks[i].line,
                        close_line: toks[close].line,
                    };
                    // Hot markers arm the next `{` on or after their line.
                    let mut armed = false;
                    while next_marker < markers.len() && markers[next_marker] <= toks[i].line {
                        next_marker += 1;
                        armed = true;
                    }
                    if armed {
                        self.hot_regions.push(region.clone());
                    }
                    if test_pending {
                        self.test_regions.push(region);
                        test_pending = false;
                    }
                }
                _ => {}
            }
            i += 1;
        }

        // Mark fns defined inside test regions.
        for f in self.fns.iter_mut().filter(|f| f.file == file) {
            f.in_test = self
                .test_regions
                .iter()
                .any(|r| r.contains(file, f.body_open));
        }
    }

    /// Marks functions directly inside hot regions, then resolves call
    /// sites inside hot regions to same-crate functions (one level deep).
    fn propagate_hotness(&mut self, files: &[&LexedFile], labels: &[&str]) {
        for f in self.fns.iter_mut() {
            if self
                .hot_regions
                .iter()
                .any(|r| r.contains(f.file, f.body_open))
            {
                f.hot = Hotness::Direct;
            }
        }
        // Names of fns defined in this crate (non-test), for resolution.
        let defined: BTreeSet<&str> = self
            .fns
            .iter()
            .filter(|f| !f.in_test)
            .map(|f| f.name.as_str())
            .collect();
        // Callee name → first hot call site, as `label:line`.
        let mut hot_calls: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for region in &self.hot_regions {
            // Skip marked regions that are themselves test code.
            if self
                .test_regions
                .iter()
                .any(|r| r.contains(region.file, region.open))
            {
                continue;
            }
            let toks = &files[region.file].toks;
            for t in region.open..=region.close.min(toks.len() - 1) {
                let Some(name) = call_at(toks, t) else { continue };
                if defined.contains(name) {
                    hot_calls
                        .entry(name.to_string())
                        .or_insert((region.file, toks[t].line));
                }
            }
        }
        for f in self.fns.iter_mut() {
            if f.hot == Hotness::No && !f.in_test {
                if let Some(&(file, line)) = hot_calls.get(f.name.as_str()) {
                    f.hot = Hotness::Transitive(format!("{}:{line}", labels[file]));
                }
            }
        }
    }

    /// Hot line ranges for one file: directly marked regions plus bodies of
    /// transitively hot functions. Returns `(start_line, end_line, via)`
    /// where `via` is `None` for direct regions.
    pub fn hot_line_ranges(&self, file: usize) -> Vec<(usize, usize, Option<String>)> {
        let mut out: Vec<(usize, usize, Option<String>)> = self
            .hot_regions
            .iter()
            .filter(|r| r.file == file)
            .map(|r| (r.open_line, r.close_line, None))
            .collect();
        for f in self.fns.iter().filter(|f| f.file == file) {
            if let Hotness::Transitive(via) = &f.hot {
                out.push((f.open_line, f.close_line, Some(via.clone())));
            }
        }
        out.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        out
    }

    /// Test line ranges for one file.
    pub fn test_line_ranges(&self, file: usize) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .test_regions
            .iter()
            .filter(|r| r.file == file)
            .map(|r| (r.open_line, r.close_line))
            .collect();
        out.sort_unstable();
        out
    }
}

/// If the token at `t` is the name position of a call that may resolve to a
/// crate function, returns the callee name.
fn call_at<'t>(toks: &'t [crate::lex::Spanned], t: usize) -> Option<&'t str> {
    let name = toks[t].tok.ident()?;
    if !toks.get(t + 1).is_some_and(|n| n.tok.is_punct('(')) {
        return None;
    }
    if NON_CALL_IDENTS.contains(&name) || SKIP_CALLEES.contains(&name) {
        return None;
    }
    // `fn name(` is the definition, not a call.
    if t > 0 && toks[t - 1].tok.ident() == Some("fn") {
        return None;
    }
    // Path call `Prefix::name(`: exclude std-typed prefixes.
    if t >= 3 && toks[t - 1].tok.is_punct(':') && toks[t - 2].tok.is_punct(':') {
        if let Some(prefix) = toks[t - 3].tok.ident() {
            if STD_PREFIXES.contains(&prefix) {
                return None;
            }
        }
    }
    Some(name)
}

/// Open-brace token index → matching close-brace token index.
fn brace_matches(lf: &LexedFile) -> BTreeMap<usize, usize> {
    let mut out = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in lf.toks.iter().enumerate() {
        match t.tok {
            Tok::Punct('{') => stack.push(i),
            Tok::Punct('}') => {
                if let Some(open) = stack.pop() {
                    out.insert(open, i);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn graph_of(src: &str, markers: &[usize]) -> (CrateGraph, LexedFile) {
        let lf = lex(src);
        let g = CrateGraph::build(&[&lf], &["a.rs"], &[markers.to_vec()]);
        (g, lf)
    }

    /// Marker lines extracted the way the scanner does it.
    fn markers_of(lf: &crate::lex::LexedFile) -> Vec<usize> {
        lf.comments
            .iter()
            .filter(|c| c.text.contains("simlint: hot-path"))
            .map(|c| c.line)
            .collect()
    }

    #[test]
    fn finds_fn_defs_and_bodies() {
        let (g, _) = graph_of(
            "fn alpha() { beta(); }\nfn beta() -> Vec<u32> { Vec::new() }\n",
            &[],
        );
        let names: Vec<_> = g.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(g.fns[0].open_line, 1);
        assert_eq!(g.fns[1].close_line, 2);
    }

    #[test]
    fn trait_decl_without_body_is_skipped() {
        let (g, _) = graph_of("trait T { fn sig(&self) -> u32; }\nfn real() {}\n", &[]);
        let names: Vec<_> = g.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn transitive_hotness_one_level() {
        let src = "\
// simlint: hot-path
fn dispatch(&mut self) {
    self.flush_queue();
}
fn flush_queue(&mut self) {
    let v = Vec::new();
}
fn unrelated() {}
";
        let lf = lex(src);
        let m = markers_of(&lf);
        let g = CrateGraph::build(&[&lf], &["a.rs"], &[m]);
        let flush = g.fns.iter().find(|f| f.name == "flush_queue").unwrap();
        assert!(matches!(flush.hot, Hotness::Transitive(_)), "{flush:?}");
        let unrelated = g.fns.iter().find(|f| f.name == "unrelated").unwrap();
        assert_eq!(unrelated.hot, Hotness::No);
        let dispatch = g.fns.iter().find(|f| f.name == "dispatch").unwrap();
        assert_eq!(dispatch.hot, Hotness::Direct);
    }

    #[test]
    fn std_calls_do_not_taint_crate_fns() {
        // `Vec::new()` and `.push()` in a hot region must not make crate
        // fns named `new`/`push` hot.
        let src = "\
// simlint: hot-path
fn dispatch(&mut self) {
    self.buf.push(Vec::new());
}
fn push(&mut self) { let v = Vec::new(); }
fn new() -> Self { Self { } }
";
        let lf = lex(src);
        let m = markers_of(&lf);
        let g = CrateGraph::build(&[&lf], &["a.rs"], &[m]);
        for name in ["push", "new"] {
            let f = g.fns.iter().find(|f| f.name == name).unwrap();
            assert_eq!(f.hot, Hotness::No, "{name} wrongly hot");
        }
    }

    #[test]
    fn test_regions_cover_mod_and_test_fns() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
#[cfg(not(test))]
fn also_prod() {}
";
        let (g, _) = graph_of(src, &[]);
        let helper = g.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_test);
        assert!(!g.fns.iter().find(|f| f.name == "prod").unwrap().in_test);
        assert!(!g.fns.iter().find(|f| f.name == "also_prod").unwrap().in_test);
    }

    #[test]
    fn calls_from_test_hot_regions_do_not_propagate() {
        let src = "\
#[cfg(test)]
mod tests {
    // simlint: hot-path
    fn bench_loop() { crunch(); }
}
fn crunch() { let v = Vec::new(); }
";
        let lf = lex(src);
        let m = markers_of(&lf);
        let g = CrateGraph::build(&[&lf], &["a.rs"], &[m]);
        let crunch = g.fns.iter().find(|f| f.name == "crunch").unwrap();
        assert_eq!(crunch.hot, Hotness::No);
    }

    #[test]
    fn cross_file_resolution_within_crate() {
        let a = lex("// simlint: hot-path\nfn dispatch() { drain_ring(); }\n");
        let b = lex("fn drain_ring() { let v = Vec::new(); }\n");
        let ma = markers_of(&a);
        let g = CrateGraph::build(&[&a, &b], &["a.rs", "b.rs"], &[ma, vec![]]);
        let f = g.fns.iter().find(|f| f.name == "drain_ring").unwrap();
        assert!(matches!(f.hot, Hotness::Transitive(_)));
        assert_eq!(f.file, 1);
    }
}
