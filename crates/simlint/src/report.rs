//! Machine-readable output: the `artifacts/simlint.json` report, the
//! committed `artifacts/simlint_baseline.json`, and the ratchet that
//! compares them.
//!
//! Everything here is hand-rolled (simlint is dependency-free) and
//! **byte-stable**: keys are emitted in a fixed order, collections are
//! sorted upstream ([`Analysis`] sorts by file/line/rule), and nothing
//! time- or environment-dependent is written. Running the linter twice on
//! the same tree must produce identical bytes — `scripts/check.sh` relies
//! on that to diff against the committed report.
//!
//! The **ratchet** contract: per-rule violation counts may only go *down*
//! relative to the committed baseline, and the waiver inventory may not
//! grow — adding a waiver requires deliberately regenerating the baseline
//! (`simlint --write-baseline`), which makes new exceptions reviewable.

use crate::rules::{RuleId, Severity};
use crate::scan::Analysis;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Escapes a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full JSON report for one analysis run.
pub fn render_report(analysis: &Analysis) -> String {
    let counts = analysis.rule_counts();
    let deny = analysis
        .violations
        .iter()
        .filter(|v| v.severity == Severity::Deny)
        .count();
    let warn = analysis.violations.len() - deny;
    let stale = counts.get(&RuleId::StaleWaiver).copied().unwrap_or(0);

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"summary\": {\n");
    let _ = writeln!(s, "    \"violations\": {},", analysis.violations.len());
    let _ = writeln!(s, "    \"deny\": {deny},");
    let _ = writeln!(s, "    \"warn\": {warn},");
    let _ = writeln!(s, "    \"waivers\": {},", analysis.waivers.len());
    let _ = writeln!(s, "    \"stale_waivers\": {stale}");
    s.push_str("  },\n");
    s.push_str("  \"rule_counts\": {\n");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        let comma = if i + 1 < RuleId::ALL.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{}\": {}{comma}", rule.name(), counts[rule]);
    }
    s.push_str("  },\n");
    s.push_str("  \"violations\": [");
    for (i, v) in analysis.violations.iter().enumerate() {
        let comma = if i + 1 < analysis.violations.len() { "," } else { "" };
        let _ = write!(
            s,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", \"snippet\": \"{}\"}}{comma}",
            esc(&v.file),
            v.line,
            v.rule.name(),
            v.severity.name(),
            esc(&v.message),
            esc(&v.snippet),
        );
    }
    if !analysis.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"waivers\": [");
    for (i, w) in analysis.waivers.iter().enumerate() {
        let comma = if i + 1 < analysis.waivers.len() { "," } else { "" };
        let justification = match &w.justification {
            Some(j) => format!("\"{}\"", esc(j)),
            None => "null".to_string(),
        };
        let _ = write!(
            s,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"rule\": \"{}\", \"justification\": {justification}, \"used\": {}}}{comma}",
            esc(&w.file),
            w.line,
            w.kind.name(),
            esc(&w.rule_name),
            w.used,
        );
    }
    if !analysis.waivers.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n");
    s.push_str("}\n");
    s
}

/// The committed ratchet state: per-rule violation counts plus the waiver
/// inventory (as [`crate::scan::Waiver::key`] strings).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Violation count per rule name.
    pub rule_counts: BTreeMap<String, usize>,
    /// Sanctioned waiver keys (`file:line:kind:rule`).
    pub waivers: BTreeSet<String>,
}

impl Baseline {
    /// Captures the baseline of an analysis run.
    pub fn capture(analysis: &Analysis) -> Baseline {
        Baseline {
            rule_counts: analysis
                .rule_counts()
                .into_iter()
                .map(|(r, n)| (r.name().to_string(), n))
                .collect(),
            waivers: analysis.waivers.iter().map(|w| w.key()).collect(),
        }
    }
}

/// Renders the baseline file.
pub fn render_baseline(baseline: &Baseline) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"rule_counts\": {\n");
    for (i, (name, n)) in baseline.rule_counts.iter().enumerate() {
        let comma = if i + 1 < baseline.rule_counts.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{}\": {n}{comma}", esc(name));
    }
    s.push_str("  },\n");
    s.push_str("  \"waivers\": [");
    for (i, key) in baseline.waivers.iter().enumerate() {
        let comma = if i + 1 < baseline.waivers.len() { "," } else { "" };
        let _ = write!(s, "\n    \"{}\"{comma}", esc(key));
    }
    if !baseline.waivers.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n");
    s.push_str("}\n");
    s
}

/// Parses a baseline file (the JSON subset [`render_baseline`] emits).
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let json = Json::parse(text)?;
    let obj = json.as_obj().ok_or("baseline: top level must be an object")?;
    let mut out = Baseline::default();
    match obj.get("schema") {
        Some(Json::Num(1)) => {}
        other => return Err(format!("baseline: unsupported schema {other:?}")),
    }
    let counts = obj
        .get("rule_counts")
        .and_then(Json::as_obj)
        .ok_or("baseline: missing `rule_counts` object")?;
    for (name, v) in counts {
        let n = match v {
            Json::Num(n) if *n >= 0 => *n as usize,
            _ => return Err(format!("baseline: count for `{name}` must be a non-negative integer")),
        };
        out.rule_counts.insert(name.clone(), n);
    }
    let waivers = obj
        .get("waivers")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing `waivers` array")?;
    for w in waivers {
        match w {
            Json::Str(s) => {
                out.waivers.insert(s.clone());
            }
            _ => return Err("baseline: waiver entries must be strings".to_string()),
        }
    }
    Ok(out)
}

/// Compares an analysis run against the committed baseline. Returns the
/// list of ratchet failures (empty = pass).
pub fn ratchet(analysis: &Analysis, baseline: &Baseline) -> Vec<String> {
    let mut failures = Vec::new();
    let current = Baseline::capture(analysis);
    for (name, &n) in &current.rule_counts {
        let allowed = baseline.rule_counts.get(name).copied().unwrap_or(0);
        if n > allowed {
            failures.push(format!(
                "rule `{name}`: {n} violation(s), baseline allows {allowed} — fix or waive (with justification), the ratchet only goes down"
            ));
        }
    }
    for key in current.waivers.difference(&baseline.waivers) {
        failures.push(format!(
            "new waiver `{key}` not in the committed baseline — if sanctioned, regenerate it with `cargo run -p simlint -- --write-baseline`"
        ));
    }
    failures
}

// ---------------------------------------------------------------------------
// Minimal JSON value parser (for the baseline file only).
// ---------------------------------------------------------------------------

/// A parsed JSON value (integer-only numbers — all this format uses).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Json {
    /// An object.
    Obj(BTreeMap<String, Json>),
    /// An array.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// An integer.
    Num(i64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("json: trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\n' | b'\t' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("json: expected `{}` at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!("json: unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("json: bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("json: bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("json: unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    break;
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'u') => {
                            // `\uXXXX` — decode the BMP code point.
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("json: bad \\u escape")?;
                            let c = char::from_u32(hex).ok_or("json: bad code point")?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.i += 4;
                        }
                        _ => return Err("json: bad escape".to_string()),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
        String::from_utf8(out).map_err(|e| format!("json: invalid utf-8 in string: {e}"))
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(key, v);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    break;
                }
                _ => return Err(format!("json: expected `,` or `}}` at offset {}", self.i)),
            }
        }
        Ok(Json::Obj(m))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    break;
                }
                _ => return Err(format!("json: expected `,` or `]` at offset {}", self.i)),
            }
        }
        Ok(Json::Arr(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::scan::analyze_source;

    fn kernel_analysis(src: &str) -> Analysis {
        analyze_source("crates/simcore/src/x.rs", src, &Config::default_contract())
    }

    #[test]
    fn report_is_byte_stable_and_parseable() {
        let src = "
            fn f(q: &mut Q) { let x = q.pop().unwrap(); }
            // simlint: allow-file(wall-clock): bench shim, measures host time
            fn g() { let t = std::time::Instant::now(); }
        ";
        let a = kernel_analysis(src);
        let r1 = render_report(&a);
        let r2 = render_report(&kernel_analysis(src));
        assert_eq!(r1, r2);
        // The report must be valid JSON (our own parser accepts it).
        let parsed = Json::parse(&r1).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert!(obj.contains_key("summary"));
        assert!(obj.contains_key("violations"));
        assert!(obj.contains_key("waivers"));
        // All 13 rules appear in rule_counts.
        assert_eq!(obj["rule_counts"].as_obj().unwrap().len(), RuleId::ALL.len());
    }

    #[test]
    fn baseline_roundtrip() {
        let a = kernel_analysis(
            "
            fn f(q: &mut Q) { let x = q.pop().unwrap(); }
            use std::collections::HashMap; // simlint: allow(hash-container): interop
            ",
        );
        let b = Baseline::capture(&a);
        let rendered = render_baseline(&b);
        let parsed = parse_baseline(&rendered).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.rule_counts["panic-in-kernel"], 1);
        assert_eq!(parsed.waivers.len(), 1);
    }

    #[test]
    fn ratchet_passes_at_baseline_and_fails_above() {
        let clean = kernel_analysis("fn f() {}");
        let dirty = kernel_analysis("fn f(q: &mut Q) { let x = q.pop().unwrap(); }");
        let base = Baseline::capture(&clean);
        assert!(ratchet(&clean, &base).is_empty());
        let failures = ratchet(&dirty, &base);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("panic-in-kernel"), "{failures:?}");
        // Going *down* from a non-zero baseline passes.
        assert!(ratchet(&clean, &Baseline::capture(&dirty)).is_empty());
    }

    #[test]
    fn ratchet_rejects_new_waivers() {
        let clean = kernel_analysis("fn f() {}");
        let waived = kernel_analysis(
            "use std::collections::HashMap; // simlint: allow(hash-container): shim",
        );
        let failures = ratchet(&waived, &Baseline::capture(&clean));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("new waiver"), "{failures:?}");
    }

    #[test]
    fn ratchet_fails_on_stale_waiver() {
        // A waiver that stops suppressing fires `stale-waiver`, which the
        // zero baseline rejects.
        let clean = kernel_analysis("fn f() {}");
        let stale = kernel_analysis("fn f() {} // simlint: allow(hash-container): was needed");
        let base = Baseline::capture(&clean);
        let failures = ratchet(&stale, &base);
        assert!(
            failures.iter().any(|f| f.contains("stale-waiver")),
            "{failures:?}"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let parsed = Json::parse("{\"k\": \"a\\\"b\\\\c\\nd\"}").unwrap();
        assert_eq!(parsed.as_obj().unwrap()["k"], Json::Str("a\"b\\c\nd".into()));
    }
}
