//! A dependency-free Rust token lexer.
//!
//! This replaces the old line-based preprocessor: instead of stripping
//! comments and strings one line at a time (which mis-handled raw string
//! literals and multi-line strings), the lexer consumes the whole source
//! once and produces three synchronized views:
//!
//! * a **token stream** ([`LexedFile::toks`]) — identifiers, lifetimes,
//!   literals (contents blanked), and punctuation, each tagged with its
//!   1-based source line. The token-aware rules and the symbol/call graph
//!   ([`crate::graph`]) operate on this.
//! * **comment text per line** ([`LexedFile::comments`]) — for waiver and
//!   `hot-path` marker parsing. Block comments spanning several lines are
//!   split so each line's fragment is attributed to that line, matching the
//!   historical "waiver on the line above" semantics.
//! * **blanked code per line** ([`LexedFile::code_lines`]) — the original
//!   characters with comments removed and literal contents blanked (quotes
//!   kept). The legacy line-shaped matchers run on these, so spacing-
//!   sensitive patterns (`" as "`, `==`) still work.
//!
//! The lexer understands the full literal grammar the line scanner did not:
//! raw strings `r"…"` / `r#"…"#` (any `#` depth), byte and C strings
//! (`b"…"`, `br#"…"#`, `c"…"`), raw identifiers (`r#type`), char literals
//! vs. lifetimes, nested block comments, and numeric literals with enough
//! fidelity to tell floats from integers (needed by `float-reduction`).

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type` → `type`).
    Ident(String),
    /// Lifetime (`'a`), without the tick.
    Lifetime(String),
    /// Any string-like literal (plain, raw, byte, C); contents blanked.
    Str,
    /// A char or byte-char literal; contents blanked.
    Char,
    /// An integer literal.
    Int,
    /// A float literal (`0.5`, `1e9`, `2f64`).
    Float,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True iff this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token plus its 1-based source line.
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Comment text attributed to one source line.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based source line.
    pub line: usize,
    /// The comment text on that line (without `//` / `/*` delimiters).
    pub text: String,
}

/// The lexer's complete output for one file.
#[derive(Clone, Debug, Default)]
pub struct LexedFile {
    /// The token stream, in source order.
    pub toks: Vec<Spanned>,
    /// Comment text, one entry per line bearing comment text, in order.
    pub comments: Vec<Comment>,
    /// Per source line: original code with comments removed and literal
    /// contents blanked (string quotes kept as `"…"` placeholders).
    pub code_lines: Vec<String>,
}

impl LexedFile {
    /// Comment text of line `line` (1-based), concatenated.
    pub fn comment_on(&self, line: usize) -> String {
        let mut out = String::new();
        for c in self.comments.iter().filter(|c| c.line == line) {
            out.push_str(&c.text);
            out.push(' ');
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    src: &'a [u8],
    /// Byte index into `src`.
    i: usize,
    /// Current 1-based line.
    line: usize,
    out: LexedFile,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.i).map(|&b| b as char)
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.src.get(self.i + off).map(|&b| b as char)
    }

    /// Consumes one byte, maintaining the line counter. Multi-byte UTF-8
    /// continuation bytes never match any ASCII the lexer inspects, so
    /// byte-at-a-time iteration is safe (non-ASCII only appears inside
    /// comments, strings, and identifiers, all of which copy bytes through).
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.out.code_lines.push(String::new());
        }
        Some(c)
    }

    fn code_push(&mut self, c: char) {
        let line = self.out.code_lines.len() - 1;
        self.out.code_lines[line].push(c);
    }

    fn emit(&mut self, tok: Tok, line: usize) {
        self.out.toks.push(Spanned { tok, line });
    }

    fn comment_push(&mut self, line: usize, text: String) {
        self.out.comments.push(Comment { line, text });
    }

    fn lex(mut self) -> LexedFile {
        self.out.code_lines.push(String::new());
        while let Some(c) = self.peek() {
            match c {
                '/' if self.peek_at(1) == Some('/') => self.line_comment(),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(None),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    self.bump();
                    if !c.is_whitespace() {
                        self.code_push(c);
                        let line = self.line;
                        self.emit(Tok::Punct(c), line);
                    } else if c != '\n' {
                        self.code_push(' ');
                    }
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // consume `//`
        // Accumulate raw bytes: `peek` views the source byte-wise, so
        // pushing its chars directly would mangle multi-byte UTF-8 (em
        // dashes in waiver justifications, say). Decode once at the end.
        let mut text = Vec::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
            text.push(c as u8);
        }
        self.comment_push(line, String::from_utf8_lossy(&text).into_owned());
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        let mut text = Vec::new();
        let mut text_line = self.line;
        while let Some(c) = self.peek() {
            if c == '*' && self.peek_at(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.extend_from_slice(b"*/");
            } else if c == '/' && self.peek_at(1) == Some('*') {
                self.bump();
                self.bump();
                depth += 1;
                text.extend_from_slice(b"/*");
            } else if c == '\n' {
                let t = String::from_utf8_lossy(&std::mem::take(&mut text)).into_owned();
                self.comment_push(text_line, t);
                self.bump();
                text_line = self.line;
            } else {
                self.bump();
                text.push(c as u8);
            }
        }
        if !text.is_empty() {
            self.comment_push(text_line, String::from_utf8_lossy(&text).into_owned());
        }
    }

    /// Lexes a `"…"` string (with escapes). `prefix` is an already-consumed
    /// literal prefix like `b`; only used to decide the token kind (all
    /// stringish literals emit [`Tok::Str`]).
    fn string_literal(&mut self, _prefix: Option<&str>) {
        let line = self.line;
        self.bump(); // opening quote
        self.code_push('"');
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.code_push('"');
        self.emit(Tok::Str, line);
    }

    /// Lexes a raw string `r"…"` / `r##"…"##` whose prefix (`r`, `br`, …)
    /// has been consumed. The caller verified the `#…#"` shape.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        self.code_push('"');
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                // Need exactly `hashes` following `#`s to terminate.
                for k in 0..hashes {
                    if self.peek_at(k) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.code_push('"');
        self.emit(Tok::Str, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Distinguish `'a'` (char) from `'a` (lifetime): after the tick,
        // an escape means char; an ident followed by another tick means
        // char (`'x'`); otherwise lifetime.
        let next = self.peek_at(1);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if is_ident_start(c) => self.peek_at(2) == Some('\''),
            Some(_) => true, // `'('`, `'1'`, `' '` …
            None => false,
        };
        self.bump(); // tick
        if is_char {
            self.code_push('\'');
            self.code_push(' ');
            let mut first = true;
            while let Some(c) = self.peek() {
                if c == '\\' {
                    self.bump();
                    self.bump();
                } else if c == '\'' && !first {
                    self.bump();
                    break;
                } else if c == '\'' && first {
                    // Empty char `''` cannot occur in valid Rust; consume.
                    self.bump();
                    break;
                } else {
                    self.bump();
                }
                first = false;
            }
            self.code_push('\'');
            self.emit(Tok::Char, line);
        } else {
            self.code_push('\'');
            let mut name = String::new();
            while let Some(c) = self.peek() {
                if is_ident_continue(c) {
                    self.bump();
                    self.code_push(c);
                    name.push(c);
                } else {
                    break;
                }
            }
            self.emit(Tok::Lifetime(name), line);
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut is_float = false;
        let mut text = String::new();
        // Radix prefixes: hex/octal/binary are always integers.
        if self.peek() == Some('0')
            && matches!(self.peek_at(1), Some('x') | Some('o') | Some('b') | Some('X'))
        {
            for _ in 0..2 {
                let c = self.bump().expect("peeked");
                self.code_push(c);
                text.push(c);
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() || c == '_' {
                    self.bump();
                    self.code_push(c);
                    text.push(c);
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    self.bump();
                    self.code_push(c);
                    text.push(c);
                } else if c == '.' {
                    // `1..n` is a range; `1.0` is a float; `1.max` is a
                    // method call on an integer literal.
                    match self.peek_at(1) {
                        Some(d) if d.is_ascii_digit() => {
                            is_float = true;
                            self.bump();
                            self.code_push('.');
                            text.push('.');
                        }
                        _ => break,
                    }
                } else if c == 'e' || c == 'E' {
                    // Exponent only if followed by digits or a signed digit.
                    let sign_off =
                        usize::from(matches!(self.peek_at(1), Some('+') | Some('-')));
                    if self
                        .peek_at(1 + sign_off)
                        .is_some_and(|d| d.is_ascii_digit())
                    {
                        is_float = true;
                        for _ in 0..=sign_off {
                            let c = self.bump().expect("peeked");
                            self.code_push(c);
                            text.push(c);
                        }
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
        // Type suffix (`u32`, `f64`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.bump();
                self.code_push(c);
                suffix.push(c);
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        self.emit(if is_float { Tok::Float } else { Tok::Int }, line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.bump();
                name.push(c);
            } else {
                break;
            }
        }
        // Literal prefixes: `r"`, `r#"`, `b"`, `br#"`, `b'`, `c"`, `cr#"`.
        let raw_capable = matches!(name.as_str(), "r" | "br" | "rb" | "cr");
        let str_capable = raw_capable || matches!(name.as_str(), "b" | "c");
        match self.peek() {
            Some('"') if str_capable && raw_capable => return self.raw_string(),
            Some('"') if str_capable => return self.string_literal(Some(&name)),
            Some('#') if raw_capable => {
                // Either a raw string `r#"` / `r##"` … or a raw identifier
                // `r#type`. Look past the run of `#`s.
                let mut k = 0;
                while self.peek_at(k) == Some('#') {
                    k += 1;
                }
                if self.peek_at(k) == Some('"') {
                    return self.raw_string();
                }
                if name == "r" && k == 1 && self.peek_at(1).is_some_and(is_ident_start) {
                    // Raw identifier: emit the bare name.
                    self.bump(); // `#`
                    let mut raw = String::new();
                    while let Some(c) = self.peek() {
                        if is_ident_continue(c) {
                            self.bump();
                            raw.push(c);
                        } else {
                            break;
                        }
                    }
                    for c in raw.chars() {
                        self.code_push(c);
                    }
                    self.emit(Tok::Ident(raw), line);
                    return;
                }
            }
            Some('\'') if name == "b" => {
                // Byte char literal `b'x'`.
                self.char_or_lifetime();
                return;
            }
            _ => {}
        }
        for c in name.chars() {
            self.code_push(c);
        }
        self.emit(Tok::Ident(name), line);
    }
}

/// Lexes one file.
pub fn lex(source: &str) -> LexedFile {
    let lexer = Lexer {
        src: source.as_bytes(),
        i: 0,
        line: 1,
        out: LexedFile::default(),
    };
    let mut out = lexer.lex();
    // `code_lines` must cover every source line even if the file does not
    // end in a newline.
    let n_lines = source.lines().count().max(1);
    while out.code_lines.len() < n_lines {
        out.code_lines.push(String::new());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let f = lex("fn main() {\n    let x = 1;\n}\n");
        assert_eq!(idents("fn main() {}"), ["fn", "main"]);
        let let_tok = f.toks.iter().find(|t| t.tok.ident() == Some("let")).unwrap();
        assert_eq!(let_tok.line, 2);
    }

    #[test]
    fn raw_strings_are_blanked_entirely() {
        // The old line scanner treated the `"` after `r#` as a plain string
        // opener and un-blanked everything after the first interior `"`.
        let src = r####"let s = r#"say "HashMap" loudly"#; let t = 1;"####;
        let f = lex(src);
        assert!(idents(src).iter().all(|i| i != "HashMap"), "{f:?}");
        assert!(f.code_lines[0].contains("let t = 1"));
        assert!(!f.code_lines[0].contains("HashMap"));
    }

    #[test]
    fn raw_string_with_hashes_and_multiline() {
        let src = "let a = r##\"x \"# y\nstill in string\"##;\nuse std::x;";
        let f = lex(src);
        assert_eq!(f.code_lines.len(), 3);
        assert!(!f.code_lines[1].contains("still"));
        assert!(f.code_lines[2].contains("use std"));
    }

    #[test]
    fn plain_multiline_string_blanked() {
        let src = "let a = \"line one\nline two\"; let b = 2;";
        let f = lex(src);
        assert!(!f.code_lines[0].contains("line one"));
        assert!(!f.code_lines[1].contains("line two"));
        assert!(f.code_lines[1].contains("let b = 2"));
    }

    #[test]
    fn byte_and_c_strings() {
        let f = lex(r##"let a = b"bytes"; let c = br#"raw"#; let d = b'x';"##);
        let strs = f.toks.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(strs, 2, "{f:?}");
        assert_eq!(f.toks.iter().filter(|t| t.tok == Tok::Char).count(), 1);
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let f = lex("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }");
        let lifetimes: Vec<_> = f
            .toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(f.toks.iter().filter(|t| t.tok == Tok::Char).count(), 2);
        // The `"` inside the char literal must not open a string.
        assert!(f.code_lines[0].contains('}'));
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let f = lex("let a = 1.5; let b = 10; let c = 0..n; let d = 1e9; let e = 2f64; let g = 0xFF;");
        let floats = f.toks.iter().filter(|t| t.tok == Tok::Float).count();
        let ints = f.toks.iter().filter(|t| t.tok == Tok::Int).count();
        assert_eq!(floats, 3, "{f:?}"); // 1.5, 1e9, 2f64
        assert_eq!(ints, 3); // 10, 0, 0xFF
    }

    #[test]
    fn comments_attributed_per_line() {
        let src = "code(); // trailing note\n/* block\nspanning */ more();\n";
        let f = lex(src);
        assert_eq!(f.comment_on(1).trim(), "trailing note");
        assert!(f.comment_on(2).contains("block"));
        assert!(f.comment_on(3).contains("spanning"));
        assert!(f.code_lines[2].contains("more()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let f = lex(src);
        assert_eq!(idents(src), ["fn", "f"]);
        assert!(f.comment_on(1).contains("still comment"));
    }

    #[test]
    fn comment_text_preserves_utf8() {
        let f = lex("let x = 1; // simlint: allow(rule) — em-dash justification\n/* blöck — täxt */\n");
        assert!(f.comment_on(1).contains("— em-dash justification"));
        assert!(f.comment_on(2).contains("blöck — täxt"));
    }

    #[test]
    fn code_lines_preserve_spacing_for_line_matchers() {
        let f = lex("let wire = seq as u32; // cast\n");
        assert!(f.code_lines[0].contains(" as "));
        assert!(!f.code_lines[0].contains("cast"));
    }
}
