//! `cargo run -p simlint` — scan the workspace and report violations.
//!
//! Flags:
//!
//! * `--format json` — print the machine-readable report to stdout instead
//!   of the human-readable listing.
//! * `--ratchet <baseline.json>` — ratchet mode: compare against the
//!   committed baseline and fail only on regressions (a per-rule count
//!   above baseline, a waiver not in the baseline inventory, or a stale
//!   waiver).
//! * `--write-baseline [<path>]` — capture the current state as the new
//!   baseline (default `artifacts/simlint_baseline.json`) and exit.
//!
//! Every run also rewrites `artifacts/simlint.json` (byte-stable, so a
//! clean tree never shows a diff).
//!
//! Exits 0 when the contract (or the ratchet) holds, 1 when violations or
//! ratchet failures are found, 2 on configuration or I/O errors.

use simlint::{analyze_workspace, parse_baseline, ratchet, render_baseline, render_report};
use simlint::{Baseline, Config};
use std::path::PathBuf;
use std::process::ExitCode;

/// Finds the workspace root: the nearest ancestor of the current directory
/// containing `simlint.toml`, falling back to the crate's grandparent
/// (`crates/simlint/../..`) so the binary also works from a build script or
/// test harness cwd.
fn workspace_root() -> Option<PathBuf> {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if dir.join("simlint.toml").is_file() {
                return Some(dir);
            }
            if !dir.pop() {
                break;
            }
        }
    }
    let fallback = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.join("simlint.toml").is_file().then_some(fallback)
}

/// Parsed command line.
struct Args {
    json: bool,
    ratchet_path: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        ratchet_path: None,
        write_baseline: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--format" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("json") => args.json = true,
                    Some("text") => args.json = false,
                    other => {
                        return Err(format!("--format expects `json` or `text`, got {other:?}"))
                    }
                }
            }
            "--ratchet" => {
                i += 1;
                let path = argv.get(i).ok_or("--ratchet expects a baseline path")?;
                args.ratchet_path = Some(PathBuf::from(path));
            }
            "--write-baseline" => {
                // Optional path operand; empty means "use the default".
                match argv.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        args.write_baseline = Some(PathBuf::from(next));
                        i += 1;
                    }
                    _ => args.write_baseline = Some(PathBuf::new()),
                }
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (flags: --format json|text, --ratchet <baseline>, --write-baseline [path])"
                ))
            }
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = workspace_root() else {
        eprintln!("simlint: no simlint.toml found above the current directory");
        return ExitCode::from(2);
    };
    let cfg = match Config::load(&root.join("simlint.toml")) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze_workspace(&root, &cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    // Always refresh the machine-readable report (byte-stable).
    let report = render_report(&analysis);
    let report_path = root.join("artifacts/simlint.json");
    if let Err(e) = std::fs::create_dir_all(report_path.parent().expect("artifacts dir"))
        .and_then(|()| std::fs::write(&report_path, &report))
    {
        eprintln!("simlint: writing {}: {e}", report_path.display());
        return ExitCode::from(2);
    }

    if let Some(path) = &args.write_baseline {
        let path = if path.as_os_str().is_empty() {
            root.join("artifacts/simlint_baseline.json")
        } else {
            path.clone()
        };
        let baseline = render_baseline(&Baseline::capture(&analysis));
        if let Err(e) = std::fs::write(&path, baseline) {
            eprintln!("simlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: baseline written to {} ({} violation(s), {} waiver(s))",
            path.display(),
            analysis.violations.len(),
            analysis.waivers.len()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(baseline_path) = &args.ratchet_path {
        let baseline = match std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))
            .and_then(|t| parse_baseline(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        };
        let failures = ratchet(&analysis, &baseline);
        if args.json {
            print!("{report}");
        }
        return if failures.is_empty() {
            println!(
                "simlint: ratchet holds ({} violation(s) within baseline, {} waiver(s))",
                analysis.violations.len(),
                analysis.waivers.len()
            );
            ExitCode::SUCCESS
        } else {
            for f in &failures {
                eprintln!("simlint: ratchet: {f}");
            }
            eprintln!(
                "simlint: ratchet failed ({} regression(s)); full report: {}",
                failures.len(),
                report_path.display()
            );
            ExitCode::FAILURE
        };
    }

    if args.json {
        print!("{report}");
        return if analysis.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if analysis.violations.is_empty() {
        println!(
            "simlint: determinism contract holds ({} roots, {} rules, {} waiver(s))",
            cfg.roots.len(),
            cfg.rules.values().filter(|s| s.enabled).count(),
            analysis.waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &analysis.violations {
            println!("{v}");
        }
        println!("simlint: {} violation(s)", analysis.violations.len());
        ExitCode::FAILURE
    }
}
