//! `cargo run -p simlint` — scan the workspace and report violations.
//!
//! Exits 0 when the determinism contract holds, 1 when violations are
//! found, 2 on configuration or I/O errors.

use simlint::{check_workspace, Config};
use std::path::PathBuf;
use std::process::ExitCode;

/// Finds the workspace root: the nearest ancestor of the current directory
/// containing `simlint.toml`, falling back to the crate's grandparent
/// (`crates/simlint/../..`) so the binary also works from a build script or
/// test harness cwd.
fn workspace_root() -> Option<PathBuf> {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if dir.join("simlint.toml").is_file() {
                return Some(dir);
            }
            if !dir.pop() {
                break;
            }
        }
    }
    let fallback = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.join("simlint.toml").is_file().then_some(fallback)
}

fn main() -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("simlint: no simlint.toml found above the current directory");
        return ExitCode::from(2);
    };
    let cfg = match Config::load(&root.join("simlint.toml")) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let violations = match check_workspace(&root, &cfg) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!(
            "simlint: determinism contract holds ({} roots, {} rules)",
            cfg.roots.len(),
            cfg.rules.values().filter(|s| s.enabled).count()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("simlint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
