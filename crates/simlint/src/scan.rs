//! Source scanning: comment/string stripping, `#[cfg(test)]` tracking,
//! waiver handling, and workspace traversal.
//!
//! The scanner is deliberately line-based — it is a contract enforcer, not a
//! compiler. It errs on the side of *flagging* (the waiver syntax exists for
//! the rare sanctioned exception) while stripping comments and string
//! literal contents so documentation never trips a rule.

use crate::config::Config;
use crate::rules::RuleId;
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One determinism-contract violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// File the violation is in (workspace-relative when produced by
    /// [`check_workspace`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: RuleId,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}\n    {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message,
            self.rule.explain(),
            self.snippet
        )
    }
}

/// Per-line output of the preprocessor.
struct ProcessedLine {
    /// Code with comments removed and string-literal contents blanked.
    code: String,
    /// Concatenated text of comments on this line (for waiver detection).
    comments: String,
}

/// Streaming preprocessor state carried across lines.
#[derive(Default)]
struct Preprocessor {
    /// Nesting depth of `/* */` block comments (they nest in Rust).
    block_comment_depth: usize,
}

impl Preprocessor {
    /// Strips comments and string contents from one line.
    fn process(&mut self, line: &str) -> ProcessedLine {
        let mut code = String::with_capacity(line.len());
        let mut comments = String::new();
        let mut chars = line.chars().peekable();
        'outer: while let Some(c) = chars.next() {
            if self.block_comment_depth > 0 {
                match c {
                    '*' if chars.peek() == Some(&'/') => {
                        chars.next();
                        self.block_comment_depth -= 1;
                    }
                    '/' if chars.peek() == Some(&'*') => {
                        chars.next();
                        self.block_comment_depth += 1;
                    }
                    _ => comments.push(c),
                }
                continue;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => {
                    // Line comment: the rest of the line is comment text.
                    comments.extend(chars);
                    break 'outer;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    self.block_comment_depth += 1;
                }
                '"' => {
                    // String literal: skip contents (escapes included).
                    code.push('"');
                    while let Some(s) = chars.next() {
                        match s {
                            '\\' => {
                                chars.next();
                            }
                            '"' => {
                                code.push('"');
                                continue 'outer;
                            }
                            _ => {}
                        }
                    }
                    break 'outer; // unterminated on this line (multi-line string)
                }
                '\'' => {
                    // Either a char literal or a lifetime. A char literal
                    // closes with `'` within a couple of characters.
                    let rest: String = chars.clone().take(3).collect();
                    let is_char_lit = rest.starts_with('\\')
                        || rest.chars().nth(1) == Some('\'');
                    if is_char_lit {
                        // Skip to the closing quote.
                        let mut escaped = false;
                        code.push_str("' '"); // placeholder keeps spacing
                        for s in chars.by_ref() {
                            match s {
                                '\\' if !escaped => escaped = true,
                                '\'' if !escaped => break,
                                _ => escaped = false,
                            }
                        }
                    } else {
                        code.push('\''); // lifetime tick
                    }
                }
                _ => code.push(c),
            }
        }
        ProcessedLine { code, comments }
    }
}

/// Waivers and markers extracted from one comment.
#[derive(Default)]
struct Waivers {
    line: BTreeSet<RuleId>,
    file: BTreeSet<RuleId>,
    /// `simlint: hot-path` — the next braced region is a per-event dispatch
    /// path; region-scoped rules (hot-path-alloc) apply inside it.
    hot_path: bool,
}

/// Parses `simlint: allow(rule, ...)` / `simlint: allow-file(rule, ...)` /
/// `simlint: hot-path` from comment text.
fn parse_waivers(comment: &str) -> Waivers {
    let mut w = Waivers::default();
    let mut rest = comment;
    while let Some(i) = rest.find("simlint:") {
        let directive = rest[i + "simlint:".len()..].trim_start();
        if let Some(after) = directive.strip_prefix("hot-path") {
            // Bare region marker (not the `hot-path-alloc` rule name).
            let next = after.chars().next();
            if !next.is_some_and(|c| c.is_alphanumeric() || c == '-' || c == '_') {
                w.hot_path = true;
                rest = &rest[i + "simlint:".len()..];
                continue;
            }
        }
        let (is_file, args) = if let Some(a) = directive.strip_prefix("allow-file(") {
            (true, a)
        } else if let Some(a) = directive.strip_prefix("allow(") {
            (false, a)
        } else {
            rest = &rest[i + "simlint:".len()..];
            continue;
        };
        if let Some(end) = args.find(')') {
            for name in args[..end].split(',') {
                if let Some(rule) = RuleId::parse(name.trim()) {
                    if is_file {
                        w.file.insert(rule);
                    } else {
                        w.line.insert(rule);
                    }
                }
            }
        }
        rest = &rest[i + "simlint:".len()..];
    }
    w
}

/// Lints one source file's text. `label` is used as the file name in
/// reported violations.
pub fn check_source(label: &str, source: &str, cfg: &Config) -> Vec<Violation> {
    let mut pre = Preprocessor::default();
    let mut violations = Vec::new();
    let mut file_waivers: BTreeSet<RuleId> = BTreeSet::new();
    // Waivers from a comment-only line apply to the next line with code.
    let mut pending_waivers: BTreeSet<RuleId> = BTreeSet::new();
    // Brace depth, and the depths at which `#[cfg(test)]` regions opened.
    let mut depth: i64 = 0;
    let mut test_region_depths: Vec<i64> = Vec::new();
    let mut cfg_test_pending = false;
    // Depths at which `// simlint: hot-path` regions opened; region-scoped
    // rules apply only while this stack is non-empty.
    let mut hot_region_depths: Vec<i64> = Vec::new();
    let mut hot_path_pending = false;

    for (idx, raw) in source.lines().enumerate() {
        let processed = pre.process(raw);
        let code = processed.code.as_str();

        let waivers = parse_waivers(&processed.comments);
        file_waivers.extend(waivers.file.iter().copied());
        hot_path_pending |= waivers.hot_path;
        let mut line_waivers: BTreeSet<RuleId> = waivers.line;
        if code.trim().is_empty() {
            // Comment-only line: its waivers arm the next code line.
            pending_waivers.extend(line_waivers);
            continue;
        }
        line_waivers.extend(std::mem::take(&mut pending_waivers));

        if code.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        let depth_before = depth;
        let opens = code.chars().filter(|&c| c == '{').count() as i64;
        let closes = code.chars().filter(|&c| c == '}').count() as i64;
        if cfg_test_pending && opens > 0 {
            test_region_depths.push(depth_before);
            cfg_test_pending = false;
        }
        if hot_path_pending && opens > 0 {
            hot_region_depths.push(depth_before);
            hot_path_pending = false;
        }
        depth += opens - closes;
        let in_test = !test_region_depths.is_empty();
        let in_hot = !hot_region_depths.is_empty();

        for rule in RuleId::ALL {
            let settings = cfg.rule(rule);
            if !settings.enabled
                || (settings.skip_tests && in_test)
                || (rule.hot_path_only() && !in_hot)
                || file_waivers.contains(&rule)
                || line_waivers.contains(&rule)
            {
                continue;
            }
            if let Some(message) = rule.check_line(code) {
                violations.push(Violation {
                    file: label.to_string(),
                    line: idx + 1,
                    rule,
                    message,
                    snippet: raw.trim().to_string(),
                });
            }
        }

        // Leave test/hot regions whose block closed on this line.
        while test_region_depths.last().is_some_and(|&d| depth <= d) {
            test_region_depths.pop();
        }
        while hot_region_depths.last().is_some_and(|&d| depth <= d) {
            hot_region_depths.pop();
        }
    }
    violations
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// report order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under the configured scan roots.
///
/// `workspace_root` is the directory containing `simlint.toml`; reported
/// file names are relative to it.
pub fn check_workspace(workspace_root: &Path, cfg: &Config) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for root in &cfg.roots {
        let dir = workspace_root.join(root);
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("scan root `{root}` not found under {}", workspace_root.display()),
            ));
        }
        rust_files(&dir, &mut files)?;
    }
    let mut violations = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .display()
            .to_string();
        violations.extend(check_source(&label, &text, cfg));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        check_source("test.rs", src, &Config::default_contract())
    }

    #[test]
    fn fixture_hash_iteration_is_flagged() {
        // The seeded violation fixture: HashMap iteration in sim-style code.
        let fixture = include_str!("../fixtures/hash_iteration.rs");
        let violations = lint(fixture);
        assert!(
            violations.iter().any(|v| v.rule == RuleId::HashContainer),
            "fixture must trip hash-container: {violations:?}"
        );
        // Both the `use` and the type mention are flagged.
        assert!(violations.len() >= 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.file == "test.rs"));
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let src = r#"
            //! HashMap is banned here; Instant::now too.
            /* also HashMap in block comments,
               even SystemTime across lines */
            fn f() -> String {
                let msg = "HashMap and thread_rng in a string";
                let c = '"';
                msg.to_string()
            }
        "#;
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn line_waiver_same_line_and_next_line() {
        let src = "
            use std::collections::HashMap; // simlint: allow(hash-container)
            // simlint: allow(hash-container)
            let m: HashMap<u32, u32> = HashMap::new();
            let bad: HashMap<u32, u32> = HashMap::new();
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn file_waiver_covers_whole_file() {
        let src = "
            // simlint: allow-file(lossy-cast)
            fn to_wire(seq: u64) -> u32 { seq as u32 }
            fn also(seq: u64) -> u16 { seq as u16 }
        ";
        assert!(lint(src).is_empty());
        // …but only the waived rule.
        let src2 = "
            // simlint: allow-file(lossy-cast)
            use std::collections::HashMap;
        ";
        assert_eq!(lint(src2).len(), 1);
    }

    #[test]
    fn skip_tests_setting_exempts_cfg_test_modules() {
        let src = "
            fn prod(t: SimTime) { let _ = t; }
            #[cfg(test)]
            mod tests {
                use std::time::Instant;
                fn helper() { let _t = Instant::now(); }
            }
            fn late() { let _x = std::time::Instant::now(); }
        ";
        // Default: test code is linted too (the bare `use` doesn't match —
        // only the `Instant::now` call sites do).
        assert_eq!(lint(src).len(), 2);
        // With skip_tests, only the code outside the test module fires.
        let mut cfg = Config::default_contract();
        cfg.rules
            .get_mut(&RuleId::WallClock)
            .unwrap()
            .skip_tests = true;
        let v = check_source("test.rs", src, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 8);
    }

    #[test]
    fn disabled_rule_is_silent() {
        let mut cfg = Config::default_contract();
        cfg.rules
            .get_mut(&RuleId::HashContainer)
            .unwrap()
            .enabled = false;
        let v = check_source("t.rs", "use std::collections::HashMap;", &cfg);
        assert!(v.is_empty());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = &lint("use std::collections::HashSet;")[0];
        let s = v.to_string();
        assert!(s.contains("test.rs:1"));
        assert!(s.contains("hash-container"));
        assert!(s.contains("HashSet"));
    }

    #[test]
    fn hot_path_alloc_only_fires_inside_marked_regions() {
        // Setup code allocates freely; the marked dispatch body does not.
        let src = "
            fn setup() -> Vec<u32> {
                let v = Vec::with_capacity(16);
                v
            }
            // simlint: hot-path
            fn on_event(&mut self) {
                let acts: Vec<Action> = Vec::new();
                self.apply(acts);
            }
            fn teardown(b: Thing) -> Box<Thing> { Box::new(b) }
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::HotPathAlloc);
        assert_eq!(v[0].line, 8);
    }

    #[test]
    fn hot_path_region_ends_at_closing_brace_and_nests() {
        let src = "
            // simlint: hot-path
            fn dispatch(&mut self) {
                match ev {
                    Ev::A => { let b = Box::new(1); }
                }
            }
            fn after() { let v = vec![1, 2]; }
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn hot_path_alloc_is_waivable_per_line() {
        let src = "
            // simlint: hot-path — RTO slow path, fires once per timeout
            fn on_rto(&mut self) {
                let spill = Vec::with_capacity(4); // simlint: allow(hot-path-alloc)
                self.spill = spill;
            }
        ";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn hot_path_marker_survives_attribute_lines() {
        // Marker above `#[inline]` still binds to the function body brace.
        let src = "
            // simlint: hot-path
            #[inline]
            fn pop(&mut self) -> Option<E> {
                let v = Vec::new();
                v.pop()
            }
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn char_literals_do_not_break_string_state() {
        // A `'"'` char literal must not open a string that swallows code.
        let src = "let q = '\"'; use std::collections::HashMap;";
        assert_eq!(lint(src).len(), 1);
    }
}
