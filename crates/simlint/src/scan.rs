//! Source scanning: token-driven analysis, waiver handling (with the
//! justification/staleness audit), and workspace traversal.
//!
//! The v2 scanner runs in two phases per crate:
//!
//! 1. **Lex + structure.** Every file is tokenized once ([`crate::lex`]);
//!    waiver/marker directives are pulled from the comment stream, and a
//!    [`crate::graph::CrateGraph`] is built over all the crate's files so
//!    `// simlint: hot-path` regions propagate one call level deep.
//! 2. **Match + audit.** Candidate findings come from the legacy line
//!    matchers (over the blanked `code_lines`) and the token matchers
//!    ([`crate::rules::check_tokens`]); each is scoped (test regions,
//!    kernel-only rules, hot regions) and then run through the waiver
//!    table. Afterwards the waivers themselves are audited: one lacking a
//!    justification fires `waiver-justification`, one that suppressed
//!    nothing fires `stale-waiver`.
//!
//! The scanner is a contract enforcer, not a compiler: it errs on the side
//! of *flagging*, and the (audited) waiver syntax exists for the rare
//! sanctioned exception.

use crate::config::Config;
use crate::graph::CrateGraph;
use crate::lex::{lex, LexedFile};
use crate::rules::{check_tokens, RuleId, Severity};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One determinism-contract violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// File the violation is in (workspace-relative when produced by
    /// [`check_workspace`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: RuleId,
    /// Effective severity (config override applied).
    pub severity: Severity,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {} — {}\n    {}",
            self.file,
            self.line,
            self.rule.name(),
            self.severity.name(),
            self.message,
            self.rule.explain(),
            self.snippet
        )
    }
}

/// Scope of one waiver directive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaiverKind {
    /// `allow(rule)` — covers one code line.
    Line,
    /// `allow-file(rule)` — covers the whole file.
    File,
}

impl WaiverKind {
    /// The kind's name as used in the JSON report and baseline.
    pub fn name(self) -> &'static str {
        match self {
            WaiverKind::Line => "line",
            WaiverKind::File => "file",
        }
    }
}

/// One `// simlint: allow(...)` directive, as found in the source.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// File the waiver is in.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// The rule name as written (kept even when unknown, for the audit).
    pub rule_name: String,
    /// The parsed rule, if the name is known.
    pub rule: Option<RuleId>,
    /// Line- or file-scoped.
    pub kind: WaiverKind,
    /// Justification text after the closing `)`, if any.
    pub justification: Option<String>,
    /// How many findings this waiver suppressed.
    pub used: usize,
}

impl Waiver {
    /// Stable identity for the baseline inventory: `file:line:kind:rule`.
    pub fn key(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.file,
            self.line,
            self.kind.name(),
            self.rule_name
        )
    }
}

/// Complete output of one analysis run: sorted violations plus the waiver
/// table (with usage counts) for the report and baseline.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Violations, sorted by (file, line, rule name).
    pub violations: Vec<Violation>,
    /// Every waiver directive encountered, sorted by (file, line, rule).
    pub waivers: Vec<Waiver>,
}

/// Directives parsed from one comment.
#[derive(Default)]
struct Directives {
    /// `simlint: hot-path` — the next braced region is a dispatch path.
    hot_path: bool,
    /// `(kind, rule_name, justification)` triples from `allow*` forms.
    waivers: Vec<(WaiverKind, String, Option<String>)>,
}

/// Parses `simlint: allow(rule, ...): why` / `simlint: allow-file(...)` /
/// `simlint: hot-path` from comment text.
fn parse_directives(comment: &str) -> Directives {
    let mut d = Directives::default();
    let mut rest = comment;
    while let Some(i) = rest.find("simlint:") {
        let directive = rest[i + "simlint:".len()..].trim_start();
        rest = &rest[i + "simlint:".len()..];
        if let Some(after) = directive.strip_prefix("hot-path") {
            // Bare region marker (not the `hot-path-alloc` rule name).
            let next = after.chars().next();
            if !next.is_some_and(|c| c.is_alphanumeric() || c == '-' || c == '_') {
                d.hot_path = true;
                continue;
            }
        }
        let (kind, args) = if let Some(a) = directive.strip_prefix("allow-file(") {
            (WaiverKind::File, a)
        } else if let Some(a) = directive.strip_prefix("allow(") {
            (WaiverKind::Line, a)
        } else {
            continue;
        };
        let Some(end) = args.find(')') else { continue };
        // Justification: text after the `)` with separator punctuation
        // stripped. `allow(rule): why` and `allow(rule) — why` both work.
        let tail = args[end + 1..]
            .trim_start()
            .trim_start_matches([':', '-', '—', '–'])
            .trim();
        let justification = (!tail.is_empty()).then(|| tail.to_string());
        for name in args[..end].split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            d.waivers
                .push((kind, name.to_string(), justification.clone()));
        }
    }
    d
}

/// Per-file directive extraction product.
struct FileDirectives {
    /// 1-based lines bearing a `hot-path` marker.
    marker_lines: Vec<usize>,
    /// Raw waivers with their directive line (pre-target-resolution).
    waivers: Vec<Waiver>,
}

fn extract_directives(label: &str, lf: &LexedFile) -> FileDirectives {
    let mut out = FileDirectives {
        marker_lines: Vec::new(),
        waivers: Vec::new(),
    };
    for c in &lf.comments {
        let d = parse_directives(&c.text);
        if d.hot_path {
            out.marker_lines.push(c.line);
        }
        for (kind, rule_name, justification) in d.waivers {
            let rule = RuleId::parse(&rule_name);
            out.waivers.push(Waiver {
                file: label.to_string(),
                line: c.line,
                rule,
                rule_name,
                kind,
                justification,
                used: 0,
            });
        }
    }
    out
}

/// True iff `line` (1-based) carries code (after comment/string blanking).
fn line_has_code(lf: &LexedFile, line: usize) -> bool {
    lf.code_lines
        .get(line - 1)
        .is_some_and(|l| !l.trim().is_empty())
}

/// The code line a line-waiver at `line` covers: the directive's own line
/// if it carries code, else the next line with code (comment-only waiver
/// lines arm the next statement, blank lines pass through).
fn waiver_target(lf: &LexedFile, line: usize) -> Option<usize> {
    if line_has_code(lf, line) {
        return Some(line);
    }
    ((line + 1)..=lf.code_lines.len()).find(|&l| line_has_code(lf, l))
}

/// A candidate finding before waiver filtering.
struct Candidate {
    line: usize,
    rule: RuleId,
    message: String,
}

/// Analyzes one crate: `sources[i]` has display label `labels[i]`. All
/// files are lexed together so `hot-path` propagation can cross files
/// within the crate.
fn analyze_crate(labels: &[&str], sources: &[&str], cfg: &Config) -> Analysis {
    let lexed: Vec<LexedFile> = sources.iter().map(|s| lex(s)).collect();
    let lexed_refs: Vec<&LexedFile> = lexed.iter().collect();
    let directives: Vec<FileDirectives> = labels
        .iter()
        .zip(&lexed)
        .map(|(l, lf)| extract_directives(l, lf))
        .collect();
    let marker_lines: Vec<Vec<usize>> = directives.iter().map(|d| d.marker_lines.clone()).collect();
    let graph = CrateGraph::build(&lexed_refs, labels, &marker_lines);

    let mut analysis = Analysis::default();
    for (fi, (label, lf)) in labels.iter().zip(&lexed).enumerate() {
        let raw_lines: Vec<&str> = sources[fi].lines().collect();
        let snippet = |line: usize| {
            raw_lines
                .get(line - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default()
        };
        let is_kernel = cfg.is_kernel_file(label);
        let hot_ranges = graph.hot_line_ranges(fi);
        let test_ranges = graph.test_line_ranges(fi);
        let in_test = |line: usize| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
        // Direct regions first (via = None), so a line both directly marked
        // and transitively hot reports without the "called from" suffix.
        let hot_via = |line: usize| -> Option<Option<&String>> {
            let mut best: Option<Option<&String>> = None;
            for (a, b, via) in &hot_ranges {
                if line >= *a && line <= *b {
                    match via {
                        None => return Some(None),
                        Some(v) => {
                            if best.is_none() {
                                best = Some(Some(v));
                            }
                        }
                    }
                }
            }
            best
        };

        // Phase A: collect candidates (line matchers + token matchers).
        let mut candidates: Vec<Candidate> = Vec::new();
        for (idx, code) in lf.code_lines.iter().enumerate() {
            if code.trim().is_empty() {
                continue;
            }
            for rule in RuleId::ALL {
                if !cfg.rule(rule).enabled {
                    continue;
                }
                if let Some(message) = rule.check_line(code) {
                    candidates.push(Candidate {
                        line: idx + 1,
                        rule,
                        message,
                    });
                }
            }
        }
        for f in check_tokens(lf) {
            if cfg.rule(f.rule).enabled {
                candidates.push(Candidate {
                    line: f.line,
                    rule: f.rule,
                    message: f.message,
                });
            }
        }

        // Scope filtering.
        let mut scoped: Vec<Candidate> = Vec::new();
        for mut c in candidates {
            let settings = cfg.rule(c.rule);
            if settings.skip_tests && in_test(c.line) {
                continue;
            }
            if c.rule.kernel_only() && !is_kernel {
                continue;
            }
            if c.rule.hot_path_only() {
                match hot_via(c.line) {
                    None => continue,
                    Some(Some(via)) => {
                        c.message.push_str(&format!(" (called from hot path at {via})"));
                    }
                    Some(None) => {}
                }
            }
            scoped.push(c);
        }

        // Phase B: apply waivers. Line waivers index by resolved target
        // line; file waivers cover the whole file.
        let mut waivers = directives[fi].waivers.clone();
        let mut by_line: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut file_wide: Vec<usize> = Vec::new();
        for (wi, w) in waivers.iter().enumerate() {
            match w.kind {
                WaiverKind::File => file_wide.push(wi),
                WaiverKind::Line => {
                    if let Some(target) = waiver_target(lf, w.line) {
                        by_line.entry(target).or_default().push(wi);
                    }
                }
            }
        }
        for c in scoped {
            let line_hit = by_line
                .get(&c.line)
                .and_then(|ws| ws.iter().find(|&&wi| waivers[wi].rule == Some(c.rule)))
                .copied();
            let hit = line_hit.or_else(|| {
                file_wide
                    .iter()
                    .find(|&&wi| waivers[wi].rule == Some(c.rule))
                    .copied()
            });
            if let Some(wi) = hit {
                waivers[wi].used += 1;
                continue;
            }
            analysis.violations.push(Violation {
                file: label.to_string(),
                line: c.line,
                rule: c.rule,
                severity: cfg.rule(c.rule).severity,
                message: c.message,
                snippet: snippet(c.line),
            });
        }

        // Phase C: audit the waivers themselves.
        for w in &waivers {
            let audit = |rule: RuleId, message: String| Violation {
                file: label.to_string(),
                line: w.line,
                rule,
                severity: cfg.rule(rule).severity,
                message,
                snippet: snippet(w.line),
            };
            if cfg.rule(RuleId::WaiverJustification).enabled {
                match w.rule {
                    None => {
                        analysis.violations.push(audit(
                            RuleId::WaiverJustification,
                            format!("waiver names unknown rule `{}`", w.rule_name),
                        ));
                        continue;
                    }
                    Some(r) if r.is_meta() => {
                        analysis.violations.push(audit(
                            RuleId::WaiverJustification,
                            format!("meta rule `{}` cannot be waived", w.rule_name),
                        ));
                        continue;
                    }
                    Some(_) if w.justification.is_none() => {
                        analysis.violations.push(audit(
                            RuleId::WaiverJustification,
                            format!(
                                "waiver for `{}` lacks a justification (`… allow({}): why`)",
                                w.rule_name, w.rule_name
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
            if cfg.rule(RuleId::StaleWaiver).enabled
                && w.used == 0
                && w.rule.is_some_and(|r| cfg.rule(r).enabled)
            {
                analysis.violations.push(audit(
                    RuleId::StaleWaiver,
                    format!(
                        "stale waiver: `{}` would not fire here any more",
                        w.rule_name
                    ),
                ));
            }
        }
        analysis.waivers.extend(waivers);
    }
    analysis.sort();
    analysis
}

impl Analysis {
    /// Sorts violations by (file, line, rule name) and waivers by
    /// (file, line, rule name) — the deterministic report order.
    fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
        self.waivers
            .sort_by(|a, b| (&a.file, a.line, &a.rule_name).cmp(&(&b.file, b.line, &b.rule_name)));
    }

    /// Violation count per rule, over all 13 rules (zero-filled).
    pub fn rule_counts(&self) -> BTreeMap<RuleId, usize> {
        let mut counts: BTreeMap<RuleId, usize> = RuleId::ALL.into_iter().map(|r| (r, 0)).collect();
        for v in &self.violations {
            *counts.entry(v.rule).or_default() += 1;
        }
        counts
    }
}

/// Lints one source file's text (treated as a one-file crate). `label` is
/// used as the file name in reported violations and decides whether
/// kernel-only rules apply (see [`Config::is_kernel_file`]).
pub fn check_source(label: &str, source: &str, cfg: &Config) -> Vec<Violation> {
    analyze_source(label, source, cfg).violations
}

/// Full analysis (violations + waiver table) of one source file.
pub fn analyze_source(label: &str, source: &str, cfg: &Config) -> Analysis {
    analyze_crate(&[label], &[source], cfg)
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// report order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes every `.rs` file under the configured scan roots. Each root is
/// one crate for call-graph purposes (hot-path propagation does not cross
/// roots).
///
/// `workspace_root` is the directory containing `simlint.toml`; reported
/// file names are relative to it.
pub fn analyze_workspace(workspace_root: &Path, cfg: &Config) -> io::Result<Analysis> {
    let mut analysis = Analysis::default();
    for root in &cfg.roots {
        let dir = workspace_root.join(root);
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("scan root `{root}` not found under {}", workspace_root.display()),
            ));
        }
        let mut files = Vec::new();
        rust_files(&dir, &mut files)?;
        let mut labels = Vec::new();
        let mut sources = Vec::new();
        for path in &files {
            sources.push(std::fs::read_to_string(path)?);
            labels.push(
                path.strip_prefix(workspace_root)
                    .unwrap_or(path)
                    .display()
                    .to_string(),
            );
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let source_refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let crate_analysis = analyze_crate(&label_refs, &source_refs, cfg);
        analysis.violations.extend(crate_analysis.violations);
        analysis.waivers.extend(crate_analysis.waivers);
    }
    analysis.sort();
    Ok(analysis)
}

/// Lints every `.rs` file under the configured scan roots (violations
/// only; see [`analyze_workspace`] for the full product).
pub fn check_workspace(workspace_root: &Path, cfg: &Config) -> io::Result<Vec<Violation>> {
    Ok(analyze_workspace(workspace_root, cfg)?.violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        check_source("test.rs", src, &Config::default_contract())
    }

    /// Lint under a kernel-crate label, so kernel-only rules apply.
    fn lint_kernel(src: &str) -> Vec<Violation> {
        check_source("crates/simcore/src/x.rs", src, &Config::default_contract())
    }

    #[test]
    fn fixture_hash_iteration_is_flagged() {
        // The seeded violation fixture: HashMap iteration in sim-style code.
        let fixture = include_str!("../fixtures/hash_iteration.rs");
        let violations = lint(fixture);
        assert!(
            violations.iter().any(|v| v.rule == RuleId::HashContainer),
            "fixture must trip hash-container: {violations:?}"
        );
        // Both the `use` and the type mention are flagged.
        assert!(violations.len() >= 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.file == "test.rs"));
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let src = r#"
            //! HashMap is banned here; Instant::now too.
            /* also HashMap in block comments,
               even SystemTime across lines */
            fn f() -> String {
                let msg = "HashMap and thread_rng in a string";
                let c = '"';
                msg.to_string()
            }
        "#;
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn raw_string_contents_do_not_trip_rules() {
        // Regression: the line-based scanner treated the `"` after `r#` as
        // a plain string opener, so everything after the first interior `"`
        // leaked back into "code" and could both fire false positives and
        // swallow real code.
        let src = r####"
            fn schema() -> &'static str {
                r#"{"container": "HashMap", "clock": "Instant::now"}"#
            }
        "####;
        assert!(lint(src).is_empty(), "{:?}", lint(src));
        // …and code *after* a raw string on the same line is still linted.
        let src2 = r####"let s = r#"note: "x" here"#; use std::collections::HashMap;"####;
        let v = lint(src2);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::HashContainer);
    }

    #[test]
    fn line_waiver_same_line_and_next_line() {
        let src = "
            use std::collections::HashMap; // simlint: allow(hash-container): test
            // simlint: allow(hash-container): test
            let m: HashMap<u32, u32> = HashMap::new();
            let bad: HashMap<u32, u32> = HashMap::new();
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn file_waiver_covers_whole_file() {
        let src = "
            // simlint: allow-file(lossy-cast): wire-format module, test
            fn to_wire(seq: u64) -> u32 { seq as u32 }
            fn also(seq: u64) -> u16 { seq as u16 }
        ";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
        // …but only the waived rule; an unused file waiver is also stale.
        let src2 = "
            // simlint: allow-file(lossy-cast): test
            use std::collections::HashMap;
        ";
        let v = lint(src2);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.rule == RuleId::HashContainer));
        assert!(v.iter().any(|v| v.rule == RuleId::StaleWaiver));
    }

    #[test]
    fn skip_tests_setting_exempts_cfg_test_modules() {
        let src = "
            fn prod(t: SimTime) { let _ = t; }
            #[cfg(test)]
            mod tests {
                use std::time::Instant;
                fn helper() { let _t = Instant::now(); }
            }
            fn late() { let _x = std::time::Instant::now(); }
        ";
        // Default: test code is linted too (the bare `use` doesn't match —
        // only the `Instant::now` call sites do).
        assert_eq!(lint(src).len(), 2);
        // With skip_tests, only the code outside the test module fires.
        let mut cfg = Config::default_contract();
        cfg.rules.get_mut(&RuleId::WallClock).unwrap().skip_tests = true;
        let v = check_source("test.rs", src, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 8);
    }

    #[test]
    fn disabled_rule_is_silent() {
        let mut cfg = Config::default_contract();
        cfg.rules.get_mut(&RuleId::HashContainer).unwrap().enabled = false;
        let v = check_source("t.rs", "use std::collections::HashMap;", &cfg);
        assert!(v.is_empty());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = &lint("use std::collections::HashSet;")[0];
        let s = v.to_string();
        assert!(s.contains("test.rs:1"));
        assert!(s.contains("hash-container"));
        assert!(s.contains("deny"));
        assert!(s.contains("HashSet"));
    }

    #[test]
    fn hot_path_alloc_only_fires_inside_marked_regions() {
        // Setup code allocates freely; the marked dispatch body does not.
        let src = "
            fn setup() -> Vec<u32> {
                let v = Vec::with_capacity(16);
                v
            }
            // simlint: hot-path
            fn on_event(&mut self) {
                let acts: Vec<Action> = Vec::new();
                self.apply(acts);
            }
            fn teardown(b: Thing) -> Box<Thing> { Box::new(b) }
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::HotPathAlloc);
        assert_eq!(v[0].line, 8);
    }

    #[test]
    fn hot_path_region_ends_at_closing_brace_and_nests() {
        let src = "
            // simlint: hot-path
            fn dispatch(&mut self) {
                match ev {
                    Ev::A => { let b = Box::new(1); }
                }
            }
            fn after() { let v = vec![1, 2]; }
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn hot_path_alloc_is_waivable_per_line() {
        let src = "
            // simlint: hot-path — RTO slow path, fires once per timeout
            fn on_rto(&mut self) {
                let spill = Vec::with_capacity(4); // simlint: allow(hot-path-alloc): RTO is off the per-ACK path
                self.spill = spill;
            }
        ";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn hot_path_marker_survives_attribute_lines() {
        // Marker above `#[inline]` still binds to the function body brace.
        let src = "
            // simlint: hot-path
            #[inline]
            fn pop(&mut self) -> Option<E> {
                let v = Vec::new();
                v.pop()
            }
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn char_literals_do_not_break_string_state() {
        // A `'"'` char literal must not open a string that swallows code.
        let src = "let q = '\"'; use std::collections::HashMap;";
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn transitive_hot_path_alloc_is_caught() {
        // The allocation sits in an unmarked helper *called from* a marked
        // region — the interprocedural pass must flag it and name the call
        // site.
        let src = "
            // simlint: hot-path
            fn dispatch(&mut self) {
                self.flush_batch();
            }
            fn flush_batch(&mut self) {
                let staged: Vec<Ev> = Vec::new();
                self.commit(staged);
            }
            fn cold_setup(&mut self) {
                let v: Vec<Ev> = Vec::new();
                self.commit(v);
            }
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::HotPathAlloc);
        assert_eq!(v[0].line, 7);
        assert!(
            v[0].message.contains("called from hot path at test.rs:4"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn waiver_without_justification_is_flagged() {
        let src = "
            use std::collections::HashMap; // simlint: allow(hash-container)
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::WaiverJustification);
        // The waiver still suppresses — justification is a parallel audit,
        // not a revocation (otherwise one missing word doubles the noise).
        assert!(v.iter().all(|v| v.rule != RuleId::HashContainer));
    }

    #[test]
    fn stale_waiver_is_flagged() {
        let src = "
            let x = compute(); // simlint: allow(hash-container): long gone
        ";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::StaleWaiver);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let src = "let x = 1; // simlint: allow(hash-contanier): typo";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::WaiverJustification);
        assert!(v[0].message.contains("unknown rule"));
    }

    #[test]
    fn meta_rules_cannot_be_waived() {
        let src = "let x = 1; // simlint: allow(stale-waiver): nope";
        let v = lint(src);
        assert!(
            v.iter()
                .any(|v| v.rule == RuleId::WaiverJustification
                    && v.message.contains("cannot be waived")),
            "{v:?}"
        );
    }

    #[test]
    fn kernel_only_rules_scope_by_label() {
        let src = "fn f(q: &mut Q) { let x = q.pop().unwrap(); }";
        // Non-kernel label: panic-in-kernel does not apply.
        assert!(lint(src).is_empty(), "{:?}", lint(src));
        // Kernel label: it does.
        let v = lint_kernel(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::PanicInKernel);
        assert_eq!(v[0].severity, Severity::Warn);
    }

    #[test]
    fn panic_in_kernel_skips_tests_by_default() {
        let src = "
            fn prod(q: &mut Q) -> u32 { q.pop().expect(\"caller checked\") }
            #[cfg(test)]
            mod tests {
                #[test]
                fn case() { assert_eq!(run().unwrap(), 3); }
            }
        ";
        let v = lint_kernel(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn token_rules_run_through_check_source() {
        let v = lint("fn f(m: &HashMap<u32, u32>) { for k in m.keys() { use_it(k); } }");
        assert!(v.iter().any(|v| v.rule == RuleId::UnorderedIter), "{v:?}");
        let v = lint("fn s(v: &mut Vec<P>) { v.sort_unstable_by_key(|p| p.w); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::UnstableSortTiebreak);
        let v = lint_kernel("fn m() -> f64 { let xs = [1.0]; xs.iter().sum::<f64>() }");
        assert!(v.iter().any(|v| v.rule == RuleId::FloatReduction), "{v:?}");
        let v = lint_kernel("static mut LAST: u64 = 0;");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::SharedMutState);
    }

    #[test]
    fn waiver_usage_counts_are_tracked() {
        let src = "
            // simlint: allow-file(hash-container): interop shim, test only
            use std::collections::HashMap;
            fn f() -> HashMap<u32, u32> { HashMap::new() }
        ";
        let a = analyze_source("test.rs", src, &Config::default_contract());
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.waivers.len(), 1);
        assert!(a.waivers[0].used >= 2, "{:?}", a.waivers);
        assert_eq!(a.waivers[0].kind, WaiverKind::File);
        assert_eq!(a.waivers[0].key(), "test.rs:2:file:hash-container");
    }

    #[test]
    fn violations_are_sorted_by_file_line_rule() {
        let src = "
            fn f(q: &mut Q) {
                let b = q.pop().unwrap();
                use_it(std::collections::HashMap::<u32, u32>::new());
            }
        ";
        let v = lint_kernel(src);
        let keys: Vec<(usize, &str)> = v.iter().map(|v| (v.line, v.rule.name())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "{v:?}");
    }
}
