//! The determinism-contract rules and their per-line matchers.
//!
//! Matchers operate on *code text* — the scanner strips comments and string
//! literal contents first (see [`crate::scan`]) so that prose mentioning
//! `HashMap` or an error message containing `thread_rng` never trips a rule.

/// Identifies one rule of the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: no `HashMap`/`HashSet` — hashed iteration order is seeded per
    /// process and therefore nondeterministic.
    HashContainer,
    /// D2: no wall-clock or OS entropy inside simulation code.
    WallClock,
    /// D3: no lossy `as` casts on sequence numbers / byte counters.
    LossyCast,
    /// D4: no raw float equality on simulated time.
    FloatTimeEq,
    /// D5: no `println!`/`eprintln!`/`dbg!` in simulation code — ad-hoc
    /// prints bypass the structured observability layer (telemetry, packet
    /// log, spans, forensics) and their cost is invisible to the profiler.
    PrintMacro,
    /// D6: no `Box::new`/`Vec::new` inside a per-event dispatch region
    /// (a function marked `// simlint: hot-path`). These paths run once per
    /// simulated event — hundreds of millions of times per sweep — and a
    /// heap allocation there dominates the event loop. Allocate at setup
    /// time and reuse (scratch buffers via `std::mem::take`, preallocated
    /// slabs); genuinely-amortized allocations carry a line waiver.
    HotPathAlloc,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 6] = [
        RuleId::HashContainer,
        RuleId::WallClock,
        RuleId::LossyCast,
        RuleId::FloatTimeEq,
        RuleId::PrintMacro,
        RuleId::HotPathAlloc,
    ];

    /// The rule's name as used in `simlint.toml` and waiver comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashContainer => "hash-container",
            RuleId::WallClock => "wall-clock",
            RuleId::LossyCast => "lossy-cast",
            RuleId::FloatTimeEq => "float-time-eq",
            RuleId::PrintMacro => "print-macro",
            RuleId::HotPathAlloc => "hot-path-alloc",
        }
    }

    /// Whether this rule only applies inside `// simlint: hot-path` regions
    /// (per-event dispatch functions). Region tracking lives in the scanner;
    /// globally-scoped rules ignore it.
    pub fn hot_path_only(self) -> bool {
        matches!(self, RuleId::HotPathAlloc)
    }

    /// Parses a rule name (as written in config/waivers).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == s)
    }

    /// One-line explanation attached to violation reports.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::HashContainer => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet/Vec"
            }
            RuleId::WallClock => {
                "wall-clock/OS entropy breaks seed reproducibility; use SimTime and simcore::Rng"
            }
            RuleId::LossyCast => {
                "lossy `as` cast on a sequence/byte quantity; use the wrap-safe helpers in tcpsim::seq or widen"
            }
            RuleId::FloatTimeEq => {
                "raw float equality on simulated time; compare SimTime (integer ns) or use simcore::time helpers"
            }
            RuleId::PrintMacro => {
                "ad-hoc print in simulation code; record through telemetry/spans/forensics so output stays structured and the profiler sees the cost"
            }
            RuleId::HotPathAlloc => {
                "heap allocation in a per-event dispatch path; preallocate at setup and reuse (scratch buffer / slab), or waive if provably amortized"
            }
        }
    }

    /// Runs this rule against one line of comment/string-stripped code.
    /// Returns a short description of the offending construct, if any.
    pub fn check_line(self, code: &str) -> Option<String> {
        match self {
            RuleId::HashContainer => check_hash_container(code),
            RuleId::WallClock => check_wall_clock(code),
            RuleId::LossyCast => check_lossy_cast(code),
            RuleId::FloatTimeEq => check_float_time_eq(code),
            RuleId::PrintMacro => check_print_macro(code),
            RuleId::HotPathAlloc => check_hot_path_alloc(code),
        }
    }
}

/// True iff `hay[i..]` starts with `needle` at an identifier boundary on
/// both sides.
fn word_at(hay: &str, i: usize, needle: &str) -> bool {
    if !hay[i..].starts_with(needle) {
        return false;
    }
    let before_ok = i == 0
        || !hay[..i]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = hay[i + needle.len()..].chars().next();
    let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Finds `needle` in `hay` as a whole identifier/path segment.
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(off) = hay[start..].find(needle) {
        let i = start + off;
        if word_at(hay, i, needle) {
            return Some(i);
        }
        start = i + 1;
    }
    None
}

fn check_hash_container(code: &str) -> Option<String> {
    for banned in ["HashMap", "HashSet"] {
        if find_word(code, banned).is_some() {
            return Some(format!("use of `{banned}`"));
        }
    }
    None
}

fn check_wall_clock(code: &str) -> Option<String> {
    // Path-shaped patterns: the leading segment must sit at an identifier
    // boundary, so e.g. `MySystemTimer` does not match `SystemTime`.
    for banned in [
        "Instant::now",
        "SystemTime",
        "thread_rng",
        "std::thread",
        "rand::",
    ] {
        let head = banned.split(':').next().expect("non-empty pattern");
        let mut start = 0;
        while let Some(off) = code[start..].find(banned) {
            let i = start + off;
            if word_at(code, i, head) {
                return Some(format!("use of `{banned}`"));
            }
            start = i + 1;
        }
    }
    None
}

/// Integer types an `as` cast may truncate into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that mark a value as a sequence number, byte
/// counter, or packet uid — the quantities whose truncation silently
/// corrupts long simulations.
const SENSITIVE: [&str; 3] = ["seq", "byte", "uid"];

fn check_lossy_cast(code: &str) -> Option<String> {
    let mut start = 0;
    while let Some(off) = code[start..].find(" as ") {
        let i = start + off;
        let after = &code[i + 4..];
        let ty = after
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .next()
            .unwrap_or("");
        if NARROW_INTS.contains(&ty) {
            // Look at the expression text feeding the cast (bounded window:
            // this is a line-local heuristic, not a type checker).
            let window_start = i.saturating_sub(48);
            let expr = code[window_start..i].to_ascii_lowercase();
            for frag in SENSITIVE {
                if expr.contains(frag) {
                    return Some(format!(
                        "narrowing cast `as {ty}` on a `{frag}`-like quantity"
                    ));
                }
            }
        }
        start = i + 4;
    }
    None
}

fn check_float_time_eq(code: &str) -> Option<String> {
    let projects_time = code.contains("as_secs_f64") || code.contains("as_millis_f64");
    if projects_time {
        // `==`/`!=` on the same line as a float projection of SimTime.
        // `>=`/`<=` are fine (ordering survives the f64 projection for the
        // ranges a simulation uses); equality does not.
        let b = code.as_bytes();
        for i in 0..b.len().saturating_sub(1) {
            if b[i] == b'!' && b[i + 1] == b'=' {
                return Some("float `!=` on a SimTime projection".to_string());
            }
            if b[i] == b'=' && b[i + 1] == b'=' {
                let prev = if i == 0 { b' ' } else { b[i - 1] };
                if !matches!(prev, b'<' | b'>' | b'=' | b'!') {
                    return Some("float `==` on a SimTime projection".to_string());
                }
            }
        }
    }
    None
}

fn check_hot_path_alloc(code: &str) -> Option<String> {
    // Only the unambiguous allocator entry points: `Box::new(…)` and
    // `Vec::new(`/`Vec::with_capacity(` spelled as path calls. Growth of an
    // existing buffer (`push` on a reused scratch Vec) is amortized and
    // deliberately out of scope — the rule targets a *fresh* allocation per
    // dispatched event.
    for banned in ["Box::new", "Vec::new", "Vec::with_capacity", "vec!"] {
        let head = banned.split(|c| c == ':' || c == '!').next().expect("non-empty");
        let mut start = 0;
        while let Some(off) = code[start..].find(banned) {
            let i = start + off;
            let tail = code[i + banned.len()..].chars().next();
            let tail_ok = !tail.is_some_and(|c| c.is_alphanumeric() || c == '_');
            if word_at(code, i, head) && tail_ok {
                return Some(format!("`{banned}` in a hot dispatch path"));
            }
            start = i + 1;
        }
    }
    None
}

fn check_print_macro(code: &str) -> Option<String> {
    for banned in ["println", "eprintln", "dbg"] {
        let mut start = 0;
        while let Some(off) = code[start..].find(banned) {
            let i = start + off;
            if word_at(code, i, banned) && code[i + banned.len()..].starts_with('!') {
                return Some(format!("use of `{banned}!`"));
            }
            start = i + 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_roundtrip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn hash_container_positive_and_negative() {
        assert!(check_hash_container("let m: HashMap<u32, u64> = HashMap::new();").is_some());
        assert!(check_hash_container("use std::collections::HashSet;").is_some());
        // Identifier boundaries: a type merely containing the name is fine.
        assert!(check_hash_container("struct MyHashMapLike;").is_none());
        assert!(check_hash_container("let m = BTreeMap::new();").is_none());
    }

    #[test]
    fn wall_clock_patterns() {
        assert!(check_wall_clock("let t0 = Instant::now();").is_some());
        assert!(check_wall_clock("let t = std::time::SystemTime::now();").is_some());
        assert!(check_wall_clock("let mut rng = rand::thread_rng();").is_some());
        assert!(check_wall_clock("std::thread::sleep(d);").is_some());
        assert!(check_wall_clock("let now = ctx.now();").is_none());
        // Identifier boundary: `MySystemTimer` must not match `SystemTime`.
        assert!(check_wall_clock("let x = MySystemTimer::new();").is_none());
    }

    #[test]
    fn lossy_cast_heuristic() {
        assert!(check_lossy_cast("let wire = seq as u32;").is_some());
        assert!(check_lossy_cast("let b = total_bytes as u32;").is_some());
        assert!(check_lossy_cast("hdr.uid as u16").is_some());
        // Widening is fine.
        assert!(check_lossy_cast("let s = seq as u64;").is_none());
        // Narrowing something insensitive is out of scope for this rule.
        assert!(check_lossy_cast("let i = index as u32;").is_none());
    }

    #[test]
    fn print_macro_patterns() {
        assert!(check_print_macro("println!(\"cwnd = {cwnd}\");").is_some());
        assert!(check_print_macro("eprintln!(\"drop at {t}\");").is_some());
        assert!(check_print_macro("let x = dbg!(cwnd);").is_some());
        // Only the macro form is banned; identifiers merely containing the
        // name, or calls without `!`, are fine.
        assert!(check_print_macro("fn println_like() {}").is_none());
        assert!(check_print_macro("self.println(buf);").is_none());
        assert!(check_print_macro("let dbg = 3;").is_none());
        assert!(check_print_macro("writeln!(out, \"ok\")?;").is_none());
    }

    #[test]
    fn hot_path_alloc_patterns() {
        assert!(check_hot_path_alloc("let b = Box::new(packet);").is_some());
        assert!(check_hot_path_alloc("let acts: Vec<TcpAction> = Vec::new();").is_some());
        assert!(check_hot_path_alloc("let mut q = Vec::with_capacity(64);").is_some());
        assert!(check_hot_path_alloc("let v = vec![0u8; len];").is_some());
        // Reusing an existing buffer is the sanctioned pattern.
        assert!(check_hot_path_alloc("let mut a = std::mem::take(&mut self.scratch);").is_none());
        assert!(check_hot_path_alloc("self.stage.push(pending);").is_none());
        // Identifier boundaries: other `new`-family calls don't match.
        assert!(check_hot_path_alloc("let b = Box::new_in(p, arena);").is_none());
        assert!(check_hot_path_alloc("let s = SmallVec::new();").is_none());
        assert!(check_hot_path_alloc("let t = MyBox::newish();").is_none());
    }

    #[test]
    fn float_time_eq_heuristic() {
        assert!(check_float_time_eq("if a.as_secs_f64() == b.as_secs_f64() {").is_some());
        assert!(check_float_time_eq("if t.as_millis_f64() != 0.0 {").is_some());
        // Ordering comparisons and arithmetic are allowed.
        assert!(check_float_time_eq("if t.as_secs_f64() >= warmup {").is_none());
        assert!(check_float_time_eq("let x = t.as_secs_f64() * 2.0;").is_none());
        // Exact SimTime comparison is the sanctioned form.
        assert!(check_float_time_eq("if now == deadline {").is_none());
    }
}
