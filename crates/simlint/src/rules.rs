//! The determinism-contract rules: identifiers, severities, and matchers.
//!
//! Two matcher families coexist:
//!
//! * **Line matchers** ([`RuleId::check_line`]) operate on one line of
//!   comment/string-stripped code (produced by the lexer, see
//!   [`crate::lex`]) — the original rules keep their battle-tested
//!   spacing-sensitive patterns.
//! * **Token matchers** ([`check_tokens`]) operate on the whole file's
//!   token stream — the v2 rules (`unordered-iter`, `float-reduction`,
//!   `unstable-sort-tiebreak`, `shared-mut-state`, `panic-in-kernel`) need
//!   cross-token context (turbofish types, argument spans, local taint)
//!   that a single line cannot carry.
//!
//! Severities: a `deny` rule breaks determinism *today*; a `warn` rule
//! breaks it under planned work (parallel-DES float reductions) or is a
//! robustness hazard (kernel panics). Both count as violations — the
//! contract is zero unwaived findings — but they are ratcheted separately
//! in `artifacts/simlint_baseline.json` (see [`crate::report`]).

use crate::lex::{LexedFile, Spanned, Tok};
use std::collections::BTreeSet;

/// Violation severity, attached to every finding and to the JSON report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Breaks the determinism contract as the code stands.
    Deny,
    /// Breaks determinism under planned parallel-DES work, or is a
    /// robustness hazard on the dispatch path.
    Warn,
}

impl Severity {
    /// The severity's name as used in config and the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }

    /// Parses a severity name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "deny" => Some(Severity::Deny),
            "warn" => Some(Severity::Warn),
            _ => None,
        }
    }
}

/// Identifies one rule of the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: no `HashMap`/`HashSet` — hashed iteration order is seeded per
    /// process and therefore nondeterministic.
    HashContainer,
    /// D2: no wall-clock or OS entropy inside simulation code.
    WallClock,
    /// D3: no lossy `as` casts on sequence numbers / byte counters.
    LossyCast,
    /// D4: no raw float equality on simulated time.
    FloatTimeEq,
    /// D5: no `println!`/`eprintln!`/`dbg!` in simulation code — ad-hoc
    /// prints bypass the structured observability layer (telemetry, packet
    /// log, spans, forensics) and their cost is invisible to the profiler.
    PrintMacro,
    /// D6: no `Box::new`/`Vec::new` inside a per-event dispatch region
    /// (a function marked `// simlint: hot-path`) **or inside any function
    /// called from one, one level deep within the crate** (the
    /// interprocedural pass, see [`crate::graph`]). These paths run once
    /// per simulated event; a heap allocation there dominates the event
    /// loop. Allocate at setup time and reuse.
    HotPathAlloc,
    /// D7: no iteration over hash-ordered containers, even through
    /// generics (`BuildHasher`/`RandomState` bounds, `hash_map::` iterator
    /// types, `.iter()`/`.keys()`/`for … in` on a hash-typed binding).
    UnorderedIter,
    /// D8: no order-sensitive float reductions (`.sum::<f64>()`, float
    /// `fold`) in kernel crates — float addition is non-associative, so a
    /// future parallel-DES partition would change the result bit pattern.
    FloatReduction,
    /// D9: `sort_unstable_by*` must supply a total tie-break (a `.then*`
    /// chain or a composite tuple key); without one, elements comparing
    /// equal keep whatever relative order the input happened to have.
    UnstableSortTiebreak,
    /// D10: no shared mutable state in kernel crates — `static mut`,
    /// `Mutex`/`RwLock`/`Condvar`, or `Relaxed` atomic orderings. The
    /// simulation crates are single-threaded by contract; shared state is
    /// how a future parallel-DES run silently diverges.
    SharedMutState,
    /// D11: no `unwrap`/`expect`/`panic!` family on non-test kernel code.
    /// A panic mid-dispatch tears down the whole sweep cell and loses the
    /// packet log that would explain it; use invariant-documented `expect`
    /// under a justified waiver, or a structured error.
    PanicInKernel,
    /// M1 (meta): every waiver must carry a justification suffix
    /// (`// simlint: allow(rule): why`), and the rule list must parse.
    WaiverJustification,
    /// M2 (meta): a waiver whose rule no longer fires on the waived scope
    /// is *stale* and must be removed.
    StaleWaiver,
}

impl RuleId {
    /// All rules, in canonical order.
    pub const ALL: [RuleId; 13] = [
        RuleId::HashContainer,
        RuleId::WallClock,
        RuleId::LossyCast,
        RuleId::FloatTimeEq,
        RuleId::PrintMacro,
        RuleId::HotPathAlloc,
        RuleId::UnorderedIter,
        RuleId::FloatReduction,
        RuleId::UnstableSortTiebreak,
        RuleId::SharedMutState,
        RuleId::PanicInKernel,
        RuleId::WaiverJustification,
        RuleId::StaleWaiver,
    ];

    /// The rule's name as used in `simlint.toml` and waiver comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashContainer => "hash-container",
            RuleId::WallClock => "wall-clock",
            RuleId::LossyCast => "lossy-cast",
            RuleId::FloatTimeEq => "float-time-eq",
            RuleId::PrintMacro => "print-macro",
            RuleId::HotPathAlloc => "hot-path-alloc",
            RuleId::UnorderedIter => "unordered-iter",
            RuleId::FloatReduction => "float-reduction",
            RuleId::UnstableSortTiebreak => "unstable-sort-tiebreak",
            RuleId::SharedMutState => "shared-mut-state",
            RuleId::PanicInKernel => "panic-in-kernel",
            RuleId::WaiverJustification => "waiver-justification",
            RuleId::StaleWaiver => "stale-waiver",
        }
    }

    /// Default severity (overridable per rule in `simlint.toml`).
    pub fn default_severity(self) -> Severity {
        match self {
            RuleId::FloatReduction | RuleId::PanicInKernel => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// Whether `#[cfg(test)]` code is exempt by default. `panic-in-kernel`
    /// skips tests out of the box (tests *should* unwrap), as does
    /// `float-reduction` (test statistics helpers sum sampled floats to
    /// compare against tolerances — no parallel-DES partition will ever run
    /// them). Every other rule guards test determinism too.
    pub fn default_skip_tests(self) -> bool {
        matches!(self, RuleId::PanicInKernel | RuleId::FloatReduction)
    }

    /// Whether this rule only applies to files under the configured
    /// `kernel_roots` (the single-threaded simulation crates), as opposed
    /// to every scanned root.
    pub fn kernel_only(self) -> bool {
        matches!(
            self,
            RuleId::FloatReduction | RuleId::SharedMutState | RuleId::PanicInKernel
        )
    }

    /// Whether this rule only applies inside hot-path regions (directly
    /// marked or transitively reached; region tracking lives in the
    /// scanner).
    pub fn hot_path_only(self) -> bool {
        matches!(self, RuleId::HotPathAlloc)
    }

    /// Meta rules audit the waivers themselves; they cannot be waived and
    /// never match source constructs.
    pub fn is_meta(self) -> bool {
        matches!(self, RuleId::WaiverJustification | RuleId::StaleWaiver)
    }

    /// Parses a rule name (as written in config/waivers).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == s)
    }

    /// One-line explanation attached to violation reports.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::HashContainer => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet/Vec"
            }
            RuleId::WallClock => {
                "wall-clock/OS entropy breaks seed reproducibility; use SimTime and simcore::Rng"
            }
            RuleId::LossyCast => {
                "lossy `as` cast on a sequence/byte quantity; use the wrap-safe helpers in tcpsim::seq or widen"
            }
            RuleId::FloatTimeEq => {
                "raw float equality on simulated time; compare SimTime (integer ns) or use simcore::time helpers"
            }
            RuleId::PrintMacro => {
                "ad-hoc print in simulation code; record through telemetry/spans/forensics so output stays structured and the profiler sees the cost"
            }
            RuleId::HotPathAlloc => {
                "heap allocation on a per-event dispatch path (marked or called from one); preallocate at setup and reuse, or waive if provably amortized"
            }
            RuleId::UnorderedIter => {
                "iteration order of hash-based containers is per-process random, even behind generics; iterate a BTree/Vec or sort first"
            }
            RuleId::FloatReduction => {
                "float reduction order changes the result bit pattern; a parallel-DES partition would diverge — reduce over integers, use a fixed tree, or waive setup-time scalars"
            }
            RuleId::UnstableSortTiebreak => {
                "unstable sort with a non-total comparator lets equal elements keep input order; add a `.then*` tie-break or a composite tuple key"
            }
            RuleId::SharedMutState => {
                "shared mutable state (static mut / locks / Relaxed atomics) has no place in the single-threaded kernel; thread state through &mut or the driver layer"
            }
            RuleId::PanicInKernel => {
                "a kernel panic tears down the sweep cell and its packet log; return a structured error or document the invariant with an expect + justified waiver"
            }
            RuleId::WaiverJustification => {
                "every waiver must say why: `// simlint: allow(rule): justification`"
            }
            RuleId::StaleWaiver => {
                "this waiver no longer suppresses anything; remove it so dead waivers cannot hide future regressions"
            }
        }
    }

    /// Runs this rule's *line* matcher against one line of stripped code.
    /// Token-matched and meta rules return `None` here.
    pub fn check_line(self, code: &str) -> Option<String> {
        match self {
            RuleId::HashContainer => check_hash_container(code),
            RuleId::WallClock => check_wall_clock(code),
            RuleId::LossyCast => check_lossy_cast(code),
            RuleId::FloatTimeEq => check_float_time_eq(code),
            RuleId::PrintMacro => check_print_macro(code),
            RuleId::HotPathAlloc => check_hot_path_alloc(code),
            _ => None,
        }
    }
}

/// A candidate finding from a token matcher (waivers and scoping are
/// applied by the scanner).
#[derive(Clone, Debug)]
pub struct TokenFinding {
    /// 1-based line of the construct.
    pub line: usize,
    /// The rule that matched.
    pub rule: RuleId,
    /// What was found.
    pub message: String,
}

/// Runs every token-family rule over one lexed file.
pub fn check_tokens(lf: &LexedFile) -> Vec<TokenFinding> {
    let mut out = Vec::new();
    check_unordered_iter(lf, &mut out);
    check_float_reduction(lf, &mut out);
    check_unstable_sort(lf, &mut out);
    check_shared_mut_state(lf, &mut out);
    check_panic_in_kernel(lf, &mut out);
    // One finding per (line, rule): several heuristics of the same rule can
    // recognize the same construct (a `for` loop over `m.iter()` matches
    // both the loop and the method matcher); reporting it once keeps the
    // fix-one-see-next loop sane and the JSON report stable.
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| (a.line, a.rule) == (b.line, b.rule));
    out
}

/// True iff `hay[i..]` starts with `needle` at an identifier boundary on
/// both sides.
fn word_at(hay: &str, i: usize, needle: &str) -> bool {
    if !hay[i..].starts_with(needle) {
        return false;
    }
    let before_ok = i == 0
        || !hay[..i]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = hay[i + needle.len()..].chars().next();
    let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Finds `needle` in `hay` as a whole identifier/path segment.
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(off) = hay[start..].find(needle) {
        let i = start + off;
        if word_at(hay, i, needle) {
            return Some(i);
        }
        start = i + 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Line matchers (v1 rules).
// ---------------------------------------------------------------------------

fn check_hash_container(code: &str) -> Option<String> {
    for banned in ["HashMap", "HashSet"] {
        if find_word(code, banned).is_some() {
            return Some(format!("use of `{banned}`"));
        }
    }
    None
}

fn check_wall_clock(code: &str) -> Option<String> {
    // Path-shaped patterns: the leading segment must sit at an identifier
    // boundary, so e.g. `MySystemTimer` does not match `SystemTime`.
    for banned in [
        "Instant::now",
        "SystemTime",
        "thread_rng",
        "std::thread",
        "rand::",
    ] {
        let head = banned.split(':').next().expect("non-empty pattern");
        let mut start = 0;
        while let Some(off) = code[start..].find(banned) {
            let i = start + off;
            if word_at(code, i, head) {
                return Some(format!("use of `{banned}`"));
            }
            start = i + 1;
        }
    }
    None
}

/// Integer types an `as` cast may truncate into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that mark a value as a sequence number, byte
/// counter, or packet uid — the quantities whose truncation silently
/// corrupts long simulations.
const SENSITIVE: [&str; 3] = ["seq", "byte", "uid"];

fn check_lossy_cast(code: &str) -> Option<String> {
    let mut start = 0;
    while let Some(off) = code[start..].find(" as ") {
        let i = start + off;
        let after = &code[i + 4..];
        let ty = after
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .next()
            .unwrap_or("");
        if NARROW_INTS.contains(&ty) {
            // Look at the expression text feeding the cast (bounded window:
            // this is a line-local heuristic, not a type checker).
            let window_start = i.saturating_sub(48);
            let expr = code[window_start..i].to_ascii_lowercase();
            for frag in SENSITIVE {
                if expr.contains(frag) {
                    return Some(format!(
                        "narrowing cast `as {ty}` on a `{frag}`-like quantity"
                    ));
                }
            }
        }
        start = i + 4;
    }
    None
}

fn check_float_time_eq(code: &str) -> Option<String> {
    let projects_time = code.contains("as_secs_f64") || code.contains("as_millis_f64");
    if projects_time {
        // `==`/`!=` on the same line as a float projection of SimTime.
        // `>=`/`<=` are fine (ordering survives the f64 projection for the
        // ranges a simulation uses); equality does not.
        let b = code.as_bytes();
        for i in 0..b.len().saturating_sub(1) {
            if b[i] == b'!' && b[i + 1] == b'=' {
                return Some("float `!=` on a SimTime projection".to_string());
            }
            if b[i] == b'=' && b[i + 1] == b'=' {
                let prev = if i == 0 { b' ' } else { b[i - 1] };
                if !matches!(prev, b'<' | b'>' | b'=' | b'!') {
                    return Some("float `==` on a SimTime projection".to_string());
                }
            }
        }
    }
    None
}

fn check_print_macro(code: &str) -> Option<String> {
    for banned in ["println", "eprintln", "dbg"] {
        let mut start = 0;
        while let Some(off) = code[start..].find(banned) {
            let i = start + off;
            if word_at(code, i, banned) && code[i + banned.len()..].starts_with('!') {
                return Some(format!("use of `{banned}!`"));
            }
            start = i + 1;
        }
    }
    None
}

fn check_hot_path_alloc(code: &str) -> Option<String> {
    // Only the unambiguous allocator entry points: `Box::new(…)` and
    // `Vec::new(`/`Vec::with_capacity(` spelled as path calls. Growth of an
    // existing buffer (`push` on a reused scratch Vec) is amortized and
    // deliberately out of scope — the rule targets a *fresh* allocation per
    // dispatched event.
    for banned in ["Box::new", "Vec::new", "Vec::with_capacity", "vec!"] {
        let head = banned.split(|c| c == ':' || c == '!').next().expect("non-empty");
        let mut start = 0;
        while let Some(off) = code[start..].find(banned) {
            let i = start + off;
            let tail = code[i + banned.len()..].chars().next();
            let tail_ok = !tail.is_some_and(|c| c.is_alphanumeric() || c == '_');
            if word_at(code, i, head) && tail_ok {
                return Some(format!("`{banned}` in a hot dispatch path"));
            }
            start = i + 1;
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Token matchers (v2 rules).
// ---------------------------------------------------------------------------

/// Hash-ordered container type names (including the common external
/// aliases, so a rename cannot smuggle one in).
const HASH_TYPES: [&str; 6] = [
    "HashMap", "HashSet", "FxHashMap", "FxHashSet", "AHashMap", "AHashSet",
];

/// Iteration methods whose order is observable.
const ITER_METHODS: [&str; 9] = [
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys",
    "into_values", "drain",
];

fn ident_is<'a>(toks: &'a [Spanned], i: usize) -> Option<&'a str> {
    toks.get(i).and_then(|t| t.tok.ident())
}

fn is_punct(toks: &[Spanned], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.tok.is_punct(c))
}

fn check_unordered_iter(lf: &LexedFile, out: &mut Vec<TokenFinding>) {
    let toks = &lf.toks;

    // Pass 1: taint local bindings and parameters whose declared type or
    // initializer mentions a hash container. Two shapes:
    //   `let [mut] name … ;` with a hash type before the `;`
    //   `name : …HashType…` up to `,` / `)` / `{` / `=` (params, fields)
    let mut tainted: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        if ident_is(toks, i) == Some("let") {
            let mut j = i + 1;
            if ident_is(toks, j) == Some("mut") {
                j += 1;
            }
            let Some(name) = ident_is(toks, j) else { continue };
            // Scan the statement for a hash type (bounded).
            for t in toks.iter().skip(j + 1).take(48) {
                match &t.tok {
                    Tok::Punct(';') => break,
                    Tok::Ident(s) if HASH_TYPES.contains(&s.as_str()) => {
                        tainted.insert(name);
                        break;
                    }
                    _ => {}
                }
            }
        } else if is_punct(toks, i + 1, ':') && !is_punct(toks, i + 2, ':') && !is_punct(toks, i, ':')
        {
            let Some(name) = ident_is(toks, i) else { continue };
            for t in toks.iter().skip(i + 2).take(32) {
                match &t.tok {
                    Tok::Punct(',') | Tok::Punct(')') | Tok::Punct('{') | Tok::Punct(';')
                    | Tok::Punct('=') => break,
                    Tok::Ident(s) if HASH_TYPES.contains(&s.as_str()) => {
                        tainted.insert(name);
                        break;
                    }
                    _ => {}
                }
            }
        }
    }

    for i in 0..toks.len() {
        let Some(name) = ident_is(toks, i) else { continue };
        let line = toks[i].line;

        // Hash-generic bounds and hasher types: code generic over the
        // hasher can iterate a HashMap it never names.
        if name == "BuildHasher" || name == "RandomState" {
            out.push(TokenFinding {
                line,
                rule: RuleId::UnorderedIter,
                message: format!("hash-generic type/bound `{name}`"),
            });
            continue;
        }
        // Hash iterator modules (`std::collections::hash_map::Iter`, …).
        if name == "hash_map" || name == "hash_set" {
            out.push(TokenFinding {
                line,
                rule: RuleId::UnorderedIter,
                message: format!("hash-ordered iterator module `{name}`"),
            });
            continue;
        }

        // `receiver.iter()`-family where the receiver chain mentions a hash
        // type or tainted binding.
        if ITER_METHODS.contains(&name)
            && i >= 2
            && is_punct(toks, i - 1, '.')
            && is_punct(toks, i + 1, '(')
        {
            // Walk the receiver chain backwards (bounded) to a statement
            // boundary.
            let start = i.saturating_sub(24);
            let mut hash_receiver = None;
            for k in (start..i - 1).rev() {
                match &toks[k].tok {
                    Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('=') => break,
                    Tok::Ident(s) if HASH_TYPES.contains(&s.as_str()) => {
                        hash_receiver = Some(s.clone());
                        break;
                    }
                    Tok::Ident(s) if tainted.contains(s.as_str()) => {
                        hash_receiver = Some(s.clone());
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(recv) = hash_receiver {
                out.push(TokenFinding {
                    line,
                    rule: RuleId::UnorderedIter,
                    message: format!("`.{name}()` over hash-ordered `{recv}`"),
                });
                continue;
            }
        }

        // `for x in <expr mentioning hash/tainted>` up to the body `{`.
        if name == "for" {
            let mut j = i + 1;
            let mut saw_in = false;
            let mut hash_src = None;
            while j < toks.len() && j < i + 48 {
                match &toks[j].tok {
                    Tok::Ident(s) if s == "in" => saw_in = true,
                    Tok::Punct('{') if saw_in => break,
                    Tok::Punct(';') => break,
                    Tok::Ident(s)
                        if saw_in
                            && (HASH_TYPES.contains(&s.as_str())
                                || tainted.contains(s.as_str())) =>
                    {
                        hash_src = Some(s.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(src) = hash_src {
                out.push(TokenFinding {
                    line,
                    rule: RuleId::UnorderedIter,
                    message: format!("`for … in` over hash-ordered `{src}`"),
                });
            }
        }
    }
}

fn check_float_reduction(lf: &LexedFile, out: &mut Vec<TokenFinding>) {
    let toks = &lf.toks;
    for i in 0..toks.len() {
        let Some(name) = ident_is(toks, i) else { continue };
        // Only method position (`.sum`, `.fold`); free fns are fine.
        if i == 0 || !is_punct(toks, i - 1, '.') {
            continue;
        }
        let line = toks[i].line;
        match name {
            "sum" | "product" => {
                // `.sum::<f64>()` — turbofish float type.
                if is_punct(toks, i + 1, ':')
                    && is_punct(toks, i + 2, ':')
                    && is_punct(toks, i + 3, '<')
                    && matches!(ident_is(toks, i + 4), Some("f64") | Some("f32"))
                {
                    out.push(TokenFinding {
                        line,
                        rule: RuleId::FloatReduction,
                        message: format!(
                            "`.{name}::<{}>()` — order-sensitive float reduction",
                            ident_is(toks, i + 4).expect("matched")
                        ),
                    });
                }
            }
            "fold" => {
                if !is_punct(toks, i + 1, '(') {
                    continue;
                }
                // Scan the argument span for a float accumulator and an
                // additive/multiplicative combine.
                let mut depth = 0i64;
                let mut has_float = false;
                let mut has_combine = false;
                for t in toks.iter().skip(i + 1) {
                    match &t.tok {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Float => has_float = true,
                        Tok::Punct('+') | Tok::Punct('*') => has_combine = true,
                        _ => {}
                    }
                }
                if has_float && has_combine {
                    out.push(TokenFinding {
                        line,
                        rule: RuleId::FloatReduction,
                        message: "float `fold` accumulation — order-sensitive".to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

fn check_unstable_sort(lf: &LexedFile, out: &mut Vec<TokenFinding>) {
    let toks = &lf.toks;
    for i in 0..toks.len() {
        let Some(name) = ident_is(toks, i) else { continue };
        if name != "sort_unstable_by" && name != "sort_unstable_by_key" {
            continue;
        }
        if !is_punct(toks, i + 1, '(') {
            continue;
        }
        // Scan the comparator/key span: a total tie-break is either a
        // `.then*` chain or a composite key/comparand — a `,` inside inner
        // parens (tuple) at depth ≥ 2 relative to the call.
        let mut depth = 0i64;
        let mut tie_break = false;
        for (off, t) in toks.iter().skip(i + 1).enumerate() {
            match &t.tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Punct(',') if depth >= 2 => tie_break = true,
                Tok::Ident(s) if s == "then" || s == "then_with" || s == "then_cmp" => {
                    tie_break = true
                }
                _ => {}
            }
            if off > 96 {
                break; // bounded scan; pathological spans err toward firing
            }
        }
        if !tie_break {
            out.push(TokenFinding {
                line: toks[i].line,
                rule: RuleId::UnstableSortTiebreak,
                message: format!("`{name}` without a total tie-break"),
            });
        }
    }
}

fn check_shared_mut_state(lf: &LexedFile, out: &mut Vec<TokenFinding>) {
    let toks = &lf.toks;
    for i in 0..toks.len() {
        let Some(name) = ident_is(toks, i) else { continue };
        let line = toks[i].line;
        match name {
            "static" if ident_is(toks, i + 1) == Some("mut") => {
                out.push(TokenFinding {
                    line,
                    rule: RuleId::SharedMutState,
                    message: "`static mut` item".to_string(),
                });
            }
            "Mutex" | "RwLock" | "Condvar" => {
                out.push(TokenFinding {
                    line,
                    rule: RuleId::SharedMutState,
                    message: format!("sync primitive `{name}`"),
                });
            }
            "Relaxed" => {
                out.push(TokenFinding {
                    line,
                    rule: RuleId::SharedMutState,
                    message: "`Relaxed` atomic ordering".to_string(),
                });
            }
            _ => {}
        }
    }
}

fn check_panic_in_kernel(lf: &LexedFile, out: &mut Vec<TokenFinding>) {
    let toks = &lf.toks;
    for i in 0..toks.len() {
        let Some(name) = ident_is(toks, i) else { continue };
        let line = toks[i].line;
        match name {
            "unwrap" | "expect" => {
                // `Option/Result::unwrap` takes no arguments — an
                // argument-taking `.unwrap(x)` is a different method (e.g.
                // the 32-bit sequence unwrapper in `tcpsim::seq`).
                let arity_ok = match name {
                    "unwrap" => is_punct(toks, i + 2, ')'),
                    _ => true,
                };
                if i >= 1 && is_punct(toks, i - 1, '.') && is_punct(toks, i + 1, '(') && arity_ok {
                    out.push(TokenFinding {
                        line,
                        rule: RuleId::PanicInKernel,
                        message: format!("`.{name}()` on the kernel path"),
                    });
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                if is_punct(toks, i + 1, '!') {
                    out.push(TokenFinding {
                        line,
                        rule: RuleId::PanicInKernel,
                        message: format!("`{name}!` in kernel code"),
                    });
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn findings(src: &str, rule: RuleId) -> Vec<TokenFinding> {
        check_tokens(&lex(src))
            .into_iter()
            .filter(|f| f.rule == rule)
            .collect()
    }

    #[test]
    fn rule_names_roundtrip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn severity_defaults_and_parse() {
        assert_eq!(RuleId::HashContainer.default_severity(), Severity::Deny);
        assert_eq!(RuleId::PanicInKernel.default_severity(), Severity::Warn);
        assert_eq!(Severity::parse("warn"), Some(Severity::Warn));
        assert_eq!(Severity::parse("deny"), Some(Severity::Deny));
        assert_eq!(Severity::parse("loud"), None);
    }

    #[test]
    fn hash_container_positive_and_negative() {
        assert!(check_hash_container("let m: HashMap<u32, u64> = HashMap::new();").is_some());
        assert!(check_hash_container("use std::collections::HashSet;").is_some());
        assert!(check_hash_container("struct MyHashMapLike;").is_none());
        assert!(check_hash_container("let m = BTreeMap::new();").is_none());
    }

    #[test]
    fn wall_clock_patterns() {
        assert!(check_wall_clock("let t0 = Instant::now();").is_some());
        assert!(check_wall_clock("let t = std::time::SystemTime::now();").is_some());
        assert!(check_wall_clock("let mut rng = rand::thread_rng();").is_some());
        assert!(check_wall_clock("std::thread::sleep(d);").is_some());
        assert!(check_wall_clock("let now = ctx.now();").is_none());
        assert!(check_wall_clock("let x = MySystemTimer::new();").is_none());
    }

    #[test]
    fn lossy_cast_heuristic() {
        assert!(check_lossy_cast("let wire = seq as u32;").is_some());
        assert!(check_lossy_cast("let b = total_bytes as u32;").is_some());
        assert!(check_lossy_cast("hdr.uid as u16").is_some());
        assert!(check_lossy_cast("let s = seq as u64;").is_none());
        assert!(check_lossy_cast("let i = index as u32;").is_none());
    }

    #[test]
    fn print_macro_patterns() {
        assert!(check_print_macro("println!(\"cwnd = {cwnd}\");").is_some());
        assert!(check_print_macro("eprintln!(\"drop at {t}\");").is_some());
        assert!(check_print_macro("let x = dbg!(cwnd);").is_some());
        assert!(check_print_macro("fn println_like() {}").is_none());
        assert!(check_print_macro("self.println(buf);").is_none());
        assert!(check_print_macro("let dbg = 3;").is_none());
        assert!(check_print_macro("writeln!(out, \"ok\")?;").is_none());
    }

    #[test]
    fn hot_path_alloc_patterns() {
        assert!(check_hot_path_alloc("let b = Box::new(packet);").is_some());
        assert!(check_hot_path_alloc("let acts: Vec<TcpAction> = Vec::new();").is_some());
        assert!(check_hot_path_alloc("let mut q = Vec::with_capacity(64);").is_some());
        assert!(check_hot_path_alloc("let v = vec![0u8; len];").is_some());
        assert!(check_hot_path_alloc("let mut a = std::mem::take(&mut self.scratch);").is_none());
        assert!(check_hot_path_alloc("self.stage.push(pending);").is_none());
        assert!(check_hot_path_alloc("let b = Box::new_in(p, arena);").is_none());
        assert!(check_hot_path_alloc("let s = SmallVec::new();").is_none());
        assert!(check_hot_path_alloc("let t = MyBox::newish();").is_none());
    }

    #[test]
    fn float_time_eq_heuristic() {
        assert!(check_float_time_eq("if a.as_secs_f64() == b.as_secs_f64() {").is_some());
        assert!(check_float_time_eq("if t.as_millis_f64() != 0.0 {").is_some());
        assert!(check_float_time_eq("if t.as_secs_f64() >= warmup {").is_none());
        assert!(check_float_time_eq("let x = t.as_secs_f64() * 2.0;").is_none());
        assert!(check_float_time_eq("if now == deadline {").is_none());
    }

    #[test]
    fn unordered_iter_generics_and_modules() {
        assert_eq!(
            findings("fn f<S: BuildHasher>(s: S) {}", RuleId::UnorderedIter).len(),
            1
        );
        assert_eq!(
            findings("use std::collections::hash_map::Entry;", RuleId::UnorderedIter).len(),
            1
        );
        assert!(findings("fn g<T: Ord>(t: T) {}", RuleId::UnorderedIter).is_empty());
    }

    #[test]
    fn unordered_iter_tainted_bindings() {
        let src = "
            fn f(m: &HashMap<u32, u32>) {
                for k in m.keys() { use_it(k); }
            }
        ";
        let v = findings(src, RuleId::UnorderedIter);
        assert!(!v.is_empty(), "{v:?}");
        // Iterating a BTreeMap binding is fine.
        let ok = "
            fn f(m: &BTreeMap<u32, u32>) {
                for k in m.keys() { use_it(k); }
            }
        ";
        assert!(findings(ok, RuleId::UnorderedIter).is_empty());
    }

    #[test]
    fn unordered_iter_let_taint() {
        let src = "
            fn f() {
                let scratch = HashMap::new();
                fill(&scratch);
                for (k, v) in scratch.iter() {}
            }
        ";
        let v = findings(src, RuleId::UnorderedIter);
        // The `let` line itself is hash-container territory; the iteration
        // line is unordered-iter's.
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn float_reduction_patterns() {
        assert_eq!(
            findings("let s = xs.iter().sum::<f64>();", RuleId::FloatReduction).len(),
            1
        );
        assert_eq!(
            findings("let p = xs.iter().product::<f32>();", RuleId::FloatReduction).len(),
            1
        );
        assert_eq!(
            findings(
                "let s = xs.iter().fold(0.0, |a, b| a + b);",
                RuleId::FloatReduction
            )
            .len(),
            1
        );
        // Integer sums, min/max folds, and explicit loops are fine.
        assert!(findings("let n = xs.iter().sum::<u64>();", RuleId::FloatReduction).is_empty());
        assert!(findings(
            "let m = xs.iter().cloned().fold(f64::INFINITY, f64::min);",
            RuleId::FloatReduction
        )
        .is_empty());
    }

    #[test]
    fn unstable_sort_tiebreak_patterns() {
        assert_eq!(
            findings(
                "v.sort_unstable_by(|a, b| a.t.partial_cmp(&b.t).unwrap());",
                RuleId::UnstableSortTiebreak
            )
            .len(),
            1
        );
        assert_eq!(
            findings("v.sort_unstable_by_key(|x| x.weight);", RuleId::UnstableSortTiebreak).len(),
            1
        );
        // Composite tuple keys and `.then*` chains are total.
        assert!(findings(
            "v.sort_unstable_by_key(|p| (p.tick, p.seq));",
            RuleId::UnstableSortTiebreak
        )
        .is_empty());
        assert!(findings(
            "v.sort_unstable_by(|a, b| a.t.total_cmp(&b.t).then(a.seq.cmp(&b.seq)));",
            RuleId::UnstableSortTiebreak
        )
        .is_empty());
        // Plain `sort_unstable()` relies on Ord, which is total.
        assert!(findings("v.sort_unstable();", RuleId::UnstableSortTiebreak).is_empty());
    }

    #[test]
    fn shared_mut_state_patterns() {
        assert_eq!(findings("static mut COUNTER: u64 = 0;", RuleId::SharedMutState).len(), 1);
        assert_eq!(
            findings("let m = Mutex::new(state);", RuleId::SharedMutState).len(),
            1
        );
        assert_eq!(
            findings("x.fetch_add(1, Ordering::Relaxed);", RuleId::SharedMutState).len(),
            1
        );
        assert!(findings("static SEED: u64 = 42;", RuleId::SharedMutState).is_empty());
        assert!(findings("x.fetch_add(1, Ordering::SeqCst);", RuleId::SharedMutState).is_empty());
    }

    #[test]
    fn panic_in_kernel_patterns() {
        assert_eq!(findings("let x = q.pop().unwrap();", RuleId::PanicInKernel).len(), 1);
        assert_eq!(
            findings("let x = q.pop().expect(\"non-empty\");", RuleId::PanicInKernel).len(),
            1
        );
        assert_eq!(findings("panic!(\"bad state\");", RuleId::PanicInKernel).len(), 1);
        assert_eq!(findings("unreachable!()", RuleId::PanicInKernel).len(), 1);
        // Non-panicking forms are fine; so are identifiers merely named so.
        assert!(findings("let x = q.pop().unwrap_or(0);", RuleId::PanicInKernel).is_empty());
        assert!(findings("let unwrap = 3;", RuleId::PanicInKernel).is_empty());
        // `.unwrap(x)` with an argument is a different method (the 32-bit
        // sequence unwrapper), not Option::unwrap.
        assert!(
            findings("let ack = self.ack_unwrap.unwrap(hdr.ack);", RuleId::PanicInKernel)
                .is_empty()
        );
    }
}
