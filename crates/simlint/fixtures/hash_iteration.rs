//! Seeded violation fixture for simlint's own tests. Not compiled into any
//! crate — read with `include_str!` by `scan.rs` unit tests, which assert
//! that the hash-container rule flags both lines below.
//!
//! The bug class this models: accumulating per-flow state in a `HashMap`
//! and then iterating it to schedule events. Iteration order depends on the
//! process's hasher seed, so two runs with the same simulation seed visit
//! flows in different orders and produce different event interleavings.

use std::collections::HashMap;

fn schedule_all(flows: &HashMap<u64, u64>) -> Vec<u64> {
    let mut order = Vec::new();
    for (&flow, &next_seq) in flows {
        // Nondeterministic visitation order leaks into the event queue.
        order.push(flow.wrapping_mul(31).wrapping_add(next_seq));
    }
    order
}
