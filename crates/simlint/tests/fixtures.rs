//! Per-rule seeded-violation fixtures.
//!
//! Every rule in the determinism contract has a fixture under
//! `tests/fixtures/` seeding exactly one violation; each seed must fire
//! exactly once (no more — precision matters as much as recall, a noisy
//! rule gets waived into uselessness) and a justified line waiver must
//! silence it completely without itself going stale. The two meta rules
//! (`waiver-justification`, `stale-waiver`) get dedicated seeds since they
//! fire on waivers, not code.

use simlint::{analyze_source, Config, RuleId};
use std::path::Path;

/// A label under a kernel root so the kernel-only rules (float-reduction,
/// shared-mut-state, panic-in-kernel) apply to the fixtures.
const LABEL: &str = "crates/simcore/src/fixture.rs";

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Fixture stem → the one rule its seed must trip. `hot_path_alloc` appears
/// twice: the direct seed and the interprocedural (helper-called-from-hot)
/// seed are distinct fixtures for the same rule.
const CASES: [(&str, RuleId); 12] = [
    ("hash_container", RuleId::HashContainer),
    ("wall_clock", RuleId::WallClock),
    ("lossy_cast", RuleId::LossyCast),
    ("float_time_eq", RuleId::FloatTimeEq),
    ("print_macro", RuleId::PrintMacro),
    ("hot_path_alloc", RuleId::HotPathAlloc),
    ("hot_path_alloc_transitive", RuleId::HotPathAlloc),
    ("unordered_iter", RuleId::UnorderedIter),
    ("float_reduction", RuleId::FloatReduction),
    ("unstable_sort_tiebreak", RuleId::UnstableSortTiebreak),
    ("shared_mut_state", RuleId::SharedMutState),
    ("panic_in_kernel", RuleId::PanicInKernel),
];

#[test]
fn every_seed_fires_exactly_once() {
    let cfg = Config::default_contract();
    for (stem, rule) in CASES {
        let a = analyze_source(LABEL, &fixture(&format!("{stem}_fires.rs")), &cfg);
        let hits = a.violations.iter().filter(|v| v.rule == rule).count();
        assert_eq!(
            hits,
            1,
            "{stem}: expected exactly one {} finding, got {:?}",
            rule.name(),
            a.violations
        );
        assert!(
            a.violations.iter().all(|v| v.rule == rule),
            "{stem}: unexpected extra findings {:?}",
            a.violations
        );
    }
}

#[test]
fn transitive_seed_reports_its_call_site() {
    let cfg = Config::default_contract();
    let a = analyze_source(LABEL, &fixture("hot_path_alloc_transitive_fires.rs"), &cfg);
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    assert!(
        a.violations[0].message.contains("called from hot path at"),
        "transitive finding should name the hot call site: {:?}",
        a.violations
    );
}

#[test]
fn justified_waiver_silences_every_seed() {
    let cfg = Config::default_contract();
    for (stem, _) in CASES {
        let a = analyze_source(LABEL, &fixture(&format!("{stem}_waived.rs")), &cfg);
        assert!(
            a.violations.is_empty(),
            "{stem}: waived fixture still fires: {:?}",
            a.violations
        );
        assert!(
            a.waivers.iter().all(|w| w.used > 0),
            "{stem}: a fixture waiver suppressed nothing (would be stale)"
        );
    }
}

#[test]
fn unjustified_waiver_is_flagged_but_still_suppresses() {
    let cfg = Config::default_contract();
    let a = analyze_source(LABEL, &fixture("waiver_justification_fires.rs"), &cfg);
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    assert_eq!(a.violations[0].rule, RuleId::WaiverJustification);
}

#[test]
fn stale_waiver_is_flagged() {
    let cfg = Config::default_contract();
    let a = analyze_source(LABEL, &fixture("stale_waiver_fires.rs"), &cfg);
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    assert_eq!(a.violations[0].rule, RuleId::StaleWaiver);
}
