//! Seeded violation: the allocation hides in a helper *called from* a
//! marked region — the interprocedural pass must still catch it.
// simlint: hot-path — fixture dispatch loop
pub fn dispatch(&mut self) {
    self.emit();
}

fn emit(&mut self) {
    let out: Vec<u32> = Vec::new();
    drop(out);
}
