//! Seeded violation: a fresh allocation directly inside a marked region.
// simlint: hot-path — fixture dispatch loop
pub fn dispatch(events: &mut [u32]) {
    let scratch: Vec<u32> = Vec::new();
    drop(scratch);
    drop(events);
}
