//! The same seeded violation, released by a justified line waiver.
pub fn wire_seq(seq_no: u64) -> u32 {
    seq_no as u32 // simlint: allow(lossy-cast): fixture — demonstrates waiver silencing
}
