//! Seeded violation: a narrowing cast on a sequence-number quantity.
pub fn wire_seq(seq_no: u64) -> u32 {
    seq_no as u32
}
