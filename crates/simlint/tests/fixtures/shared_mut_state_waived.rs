//! The same seeded violation, released by a justified line waiver.
pub struct Cell {
    lock: std::sync::Mutex<u64>, // simlint: allow(shared-mut-state): fixture — demonstrates waiver silencing
}
