//! The same seeded violation, released by a justified line waiver.
// simlint: hot-path — fixture dispatch loop
pub fn dispatch(&mut self) {
    self.emit();
}

fn emit(&mut self) {
    let out: Vec<u32> = Vec::new(); // simlint: allow(hot-path-alloc): fixture — demonstrates waiver silencing
    drop(out);
}
