//! Seeded violation: ad-hoc stdout in simulation code.
pub fn debug_dump(count: u64) {
    println!("delivered {count} packets");
}
