//! Seeded violation (kernel-only): an order-sensitive float reduction.
pub fn total_delay(samples: &[f64]) -> f64 {
    samples.iter().copied().sum::<f64>()
}
