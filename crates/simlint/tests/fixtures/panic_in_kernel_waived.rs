//! The same seeded violation, released by a justified line waiver.
pub fn head(q: &[u32]) -> u32 {
    *q.first().unwrap() // simlint: allow(panic-in-kernel): fixture — demonstrates waiver silencing
}
