//! Seeded meta violation: a justified waiver whose rule no longer fires.
pub fn quiet() {
    let x = 1; // simlint: allow(hash-container): fixture — nothing left to suppress
    drop(x);
}
