//! Seeded violation: an unstable sort whose comparator is not total.
pub fn order(pkts: &mut Vec<(u64, u32)>) {
    pkts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
}
