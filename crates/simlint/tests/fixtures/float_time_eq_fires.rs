//! Seeded violation: float equality on a SimTime projection.
pub fn same_instant(a: SimTime, b: SimTime) -> bool {
    a.as_secs_f64() == b.as_secs_f64()
}
