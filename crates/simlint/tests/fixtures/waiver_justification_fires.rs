//! Seeded meta violation: a waiver with no justification. The waiver still
//! suppresses its rule (the audit is parallel, not a revocation), so the
//! only finding is waiver-justification itself.
pub fn flow_table() {
    let table: std::collections::HashMap<u32, u64> = Default::default(); // simlint: allow(hash-container)
    drop(table);
}
