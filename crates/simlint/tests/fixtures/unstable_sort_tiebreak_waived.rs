//! The same seeded violation, released by a justified line waiver.
pub fn order(pkts: &mut Vec<(u64, u32)>) {
    pkts.sort_unstable_by(|a, b| a.0.cmp(&b.0)); // simlint: allow(unstable-sort-tiebreak): fixture — demonstrates waiver silencing
}
