//! The same seeded violation, released by a justified line waiver.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now() // simlint: allow(wall-clock): fixture — demonstrates waiver silencing
}
