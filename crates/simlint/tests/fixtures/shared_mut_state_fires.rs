//! Seeded violation (kernel-only): a lock in the single-threaded kernel.
pub struct Cell {
    lock: std::sync::Mutex<u64>,
}
