//! Seeded violation: observable iteration over a hash-ordered container.
//! (The container type itself is separately waived so exactly one rule —
//! unordered-iter — fires.)
pub fn drain_all(table: &std::collections::HashMap<u32, u64>) -> u64 { // simlint: allow(hash-container): fixture — taint source for the unordered-iter seed
    let mut total = 0;
    for v in table.values() {
        total += *v;
    }
    total
}
