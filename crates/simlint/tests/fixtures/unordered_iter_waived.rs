//! The same seeded violation, released by a justified line waiver.
pub fn drain_all(table: &std::collections::HashMap<u32, u64>) -> u64 { // simlint: allow(hash-container): fixture — taint source for the unordered-iter seed
    let mut total = 0;
    for v in table.values() { // simlint: allow(unordered-iter): fixture — demonstrates waiver silencing
        total += *v;
    }
    total
}
