//! The same seeded violation, released by a justified line waiver.
pub fn total_delay(samples: &[f64]) -> f64 {
    samples.iter().copied().sum::<f64>() // simlint: allow(float-reduction): fixture — demonstrates waiver silencing
}
