//! Seeded violation: wall-clock time inside simulation code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
