//! Seeded violation: a hash-ordered container in simulation code.
pub fn flow_table() {
    let table: std::collections::HashMap<u32, u64> = Default::default();
    drop(table);
}
