//! The same seeded violation, released by a justified line waiver.
pub fn flow_table() {
    let table: std::collections::HashMap<u32, u64> = Default::default(); // simlint: allow(hash-container): fixture — demonstrates waiver silencing
    drop(table);
}
