//! Seeded violation (kernel-only): an unwrap outside test code.
pub fn head(q: &[u32]) -> u32 {
    *q.first().unwrap()
}
