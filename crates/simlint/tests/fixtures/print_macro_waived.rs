//! The same seeded violation, released by a justified line waiver.
pub fn debug_dump(count: u64) {
    println!("delivered {count} packets"); // simlint: allow(print-macro): fixture — demonstrates waiver silencing
}
