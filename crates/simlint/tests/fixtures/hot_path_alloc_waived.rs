//! The same seeded violation, released by a justified line waiver.
// simlint: hot-path — fixture dispatch loop
pub fn dispatch(events: &mut [u32]) {
    let scratch: Vec<u32> = Vec::new(); // simlint: allow(hot-path-alloc): fixture — demonstrates waiver silencing
    drop(scratch);
    drop(events);
}
