//! The same seeded violation, released by a justified line waiver.
pub fn same_instant(a: SimTime, b: SimTime) -> bool {
    a.as_secs_f64() == b.as_secs_f64() // simlint: allow(float-time-eq): fixture — demonstrates waiver silencing
}
