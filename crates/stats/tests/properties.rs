//! Property-style tests for the statistics toolkit, driven by seeded
//! in-tree generators (`simcore::Rng`) instead of an external framework.

use simcore::Rng;
use stats::{quantile, Histogram, Welford};

const CASES: u64 = 48;

fn vec_f64(gen: &mut Rng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = min_len + gen.u64_below((max_len - min_len) as u64) as usize;
    (0..n).map(|_| gen.f64_range(lo, hi)).collect()
}

/// Welford mean/variance match the naive two-pass computation.
#[test]
fn welford_matches_naive() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x51_0000 + seed);
        let xs = vec_f64(&mut gen, -1e6, 1e6, 1, 200);
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()), "seed {seed}");
        assert!((w.variance() - var).abs() < 1e-5 * (1.0 + var), "seed {seed}");
        assert_eq!(w.count(), xs.len() as u64, "seed {seed}");
    }
}

/// Merging two Welford accumulators equals accumulating everything in one.
#[test]
fn welford_merge_associative() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x52_0000 + seed);
        let xs = vec_f64(&mut gen, -1e3, 1e3, 1, 100);
        let ys = vec_f64(&mut gen, -1e3, 1e3, 1, 100);
        let mut a = Welford::new();
        for &x in &xs {
            a.add(x);
        }
        let mut b = Welford::new();
        for &y in &ys {
            b.add(y);
        }
        a.merge(&b);
        let mut all = Welford::new();
        for &v in xs.iter().chain(ys.iter()) {
            all.add(v);
        }
        assert!((a.mean() - all.mean()).abs() < 1e-8, "seed {seed}");
        assert!((a.variance() - all.variance()).abs() < 1e-6, "seed {seed}");
    }
}

/// Histogram counts are conserved: every sample lands somewhere.
#[test]
fn histogram_conserves_samples() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x53_0000 + seed);
        let xs = vec_f64(&mut gen, -10.0, 10.0, 0, 500);
        let mut h = Histogram::new(-5.0, 5.0, 17);
        for &x in &xs {
            h.add(x);
        }
        let inside: u64 = (0..h.nbins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(inside + h.underflow() + h.overflow(), xs.len() as u64, "seed {seed}");
    }
}

/// The empirical CCDF is monotone non-increasing.
#[test]
fn ccdf_monotone() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x54_0000 + seed);
        let xs = vec_f64(&mut gen, 0.0, 100.0, 1, 300);
        let mut h = Histogram::new(0.0, 100.0, 50);
        for &x in &xs {
            h.add(x);
        }
        let mut prev = f64::INFINITY;
        for t in 0..=100 {
            let v = h.ccdf(t as f64);
            assert!(v <= prev + 1e-12, "seed {seed}");
            assert!((0.0..=1.0).contains(&v), "seed {seed}");
            prev = v;
        }
    }
}

/// Quantiles are monotone in q and bounded by min/max.
#[test]
fn quantiles_monotone_and_bounded() {
    for seed in 0..CASES {
        let mut gen = Rng::new(0x55_0000 + seed);
        let xs = vec_f64(&mut gen, -1e3, 1e3, 1, 200);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&xs, q).unwrap();
            assert!(v >= prev - 1e-12, "seed {seed}");
            assert!(v >= min - 1e-12 && v <= max + 1e-12, "seed {seed}");
            prev = v;
        }
        assert_eq!(quantile(&xs, 0.0).unwrap(), min, "seed {seed}");
        assert_eq!(quantile(&xs, 1.0).unwrap(), max, "seed {seed}");
    }
}
