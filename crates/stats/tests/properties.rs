//! Property tests for the statistics toolkit.

use proptest::prelude::*;
use stats::{quantile, Histogram, Welford};

proptest! {
    /// Welford mean/variance match the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-5 * (1.0 + var));
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    /// Merging two Welford accumulators equals accumulating everything in
    /// one.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        ys in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut a = Welford::new();
        for &x in &xs { a.add(x); }
        let mut b = Welford::new();
        for &y in &ys { b.add(y); }
        a.merge(&b);
        let mut all = Welford::new();
        for &v in xs.iter().chain(ys.iter()) { all.add(v); }
        prop_assert!((a.mean() - all.mean()).abs() < 1e-8);
        prop_assert!((a.variance() - all.variance()).abs() < 1e-6);
    }

    /// Histogram counts are conserved: every sample lands somewhere.
    #[test]
    fn histogram_conserves_samples(xs in prop::collection::vec(-10.0f64..10.0, 0..500)) {
        let mut h = Histogram::new(-5.0, 5.0, 17);
        for &x in &xs {
            h.add(x);
        }
        let inside: u64 = (0..h.nbins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(inside + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// The empirical CCDF is monotone non-increasing.
    #[test]
    fn ccdf_monotone(xs in prop::collection::vec(0.0f64..100.0, 1..300)) {
        let mut h = Histogram::new(0.0, 100.0, 50);
        for &x in &xs {
            h.add(x);
        }
        let mut prev = f64::INFINITY;
        for t in 0..=100 {
            let v = h.ccdf(t as f64);
            prop_assert!(v <= prev + 1e-12);
            prop_assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone_and_bounded(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&xs, q).unwrap();
            prop_assert!(v >= prev - 1e-12);
            prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
            prev = v;
        }
        prop_assert_eq!(quantile(&xs, 0.0).unwrap(), min);
        prop_assert_eq!(quantile(&xs, 1.0).unwrap(), max);
    }
}
