//! Flow-completion-time aggregation.
//!
//! The paper's short-flow metric (§5.1.2): "the flow completion time,
//! defined as the time from when the first packet is sent until the last
//! packet reaches the destination. In particular, we will measure the
//! average flow completion time (AFCT)."

use simcore::SimDuration;
use std::collections::BTreeMap;

/// One completed flow's observation.
#[derive(Clone, Copy, Debug)]
struct Obs {
    segments: u64,
    fct: SimDuration,
}

/// Collects flow completion times and reports AFCT, overall and by flow
/// length.
#[derive(Clone, Debug, Default)]
pub struct FctCollector {
    obs: Vec<Obs>,
}

impl FctCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed flow of `segments` with completion time `fct`.
    pub fn record(&mut self, segments: u64, fct: SimDuration) {
        self.obs.push(Obs { segments, fct });
    }

    /// Number of completed flows recorded.
    pub fn count(&self) -> usize {
        self.obs.len()
    }

    /// Average flow completion time in seconds over all flows (0 if none).
    pub fn afct(&self) -> f64 {
        if self.obs.is_empty() {
            return 0.0;
        }
        self.obs.iter().map(|o| o.fct.as_secs_f64()).sum::<f64>() / self.obs.len() as f64
    }

    /// AFCT restricted to flows with `segments <= max_segments` (the
    /// paper's "short flows" slice in mixed workloads).
    pub fn afct_up_to(&self, max_segments: u64) -> f64 {
        let xs: Vec<f64> = self
            .obs
            .iter()
            .filter(|o| o.segments <= max_segments)
            .map(|o| o.fct.as_secs_f64())
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// All raw FCTs in seconds.
    pub fn fcts(&self) -> Vec<f64> {
        self.obs.iter().map(|o| o.fct.as_secs_f64()).collect()
    }

    /// `(flow length in segments, AFCT seconds, count)` per distinct length,
    /// sorted by length — the x/y series of Figure 9.
    pub fn afct_by_length(&self) -> Vec<(u64, f64, usize)> {
        let mut by: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
        for o in &self.obs {
            let e = by.entry(o.segments).or_insert((0.0, 0));
            e.0 += o.fct.as_secs_f64();
            e.1 += 1;
        }
        by.into_iter()
            .map(|(len, (sum, n))| (len, sum / n as f64, n))
            .collect()
    }

    /// Merges another collector's observations.
    pub fn merge(&mut self, other: &FctCollector) {
        self.obs.extend_from_slice(&other.obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn afct_basic() {
        let mut c = FctCollector::new();
        c.record(10, d(100));
        c.record(10, d(300));
        assert_eq!(c.count(), 2);
        assert!((c.afct() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn afct_by_length_groups() {
        let mut c = FctCollector::new();
        c.record(5, d(100));
        c.record(5, d(200));
        c.record(50, d(1000));
        let by = c.afct_by_length();
        assert_eq!(by.len(), 2);
        assert_eq!(by[0].0, 5);
        assert!((by[0].1 - 0.15).abs() < 1e-12);
        assert_eq!(by[0].2, 2);
        assert_eq!(by[1], (50, 1.0, 1));
    }

    #[test]
    fn short_slice() {
        let mut c = FctCollector::new();
        c.record(5, d(100));
        c.record(500, d(10_000));
        assert!((c.afct_up_to(90) - 0.1).abs() < 1e-12);
        assert!((c.afct() - 5.05).abs() < 1e-12);
    }

    #[test]
    fn empty_safe() {
        let c = FctCollector::new();
        assert_eq!(c.afct(), 0.0);
        assert_eq!(c.afct_up_to(10), 0.0);
        assert!(c.afct_by_length().is_empty());
    }

    #[test]
    fn merge() {
        let mut a = FctCollector::new();
        a.record(1, d(100));
        let mut b = FctCollector::new();
        b.record(1, d(300));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.afct() - 0.2).abs() < 1e-12);
    }
}
