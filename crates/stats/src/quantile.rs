//! Exact quantiles for in-memory samples.

/// The `q`-quantile (`0 ≤ q ≤ 1`) of the samples using linear interpolation
/// between order statistics (type-7, the numpy/R default). Returns `None`
/// for an empty slice; NaNs are rejected by assertion.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    if samples.is_empty() {
        return None;
    }
    let mut xs: Vec<f64> = samples.to_vec();
    assert!(
        xs.iter().all(|x| !x.is_nan()),
        "quantile of NaN is undefined"
    );
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let h = q * (xs.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Some(xs[lo])
    } else {
        Some(xs[lo] + (h - lo as f64) * (xs[hi] - xs[lo]))
    }
}

/// Median convenience wrapper.
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
    }

    #[test]
    fn interpolation() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.5), Some(5.0));
        assert_eq!(quantile(&xs, 0.75), Some(7.5));
    }

    #[test]
    fn unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), Some(3.0));
    }

    #[test]
    fn empty_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile(&[7.0], 0.5), Some(7.0));
        assert_eq!(quantile(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_q() {
        quantile(&[1.0], 1.5);
    }
}
