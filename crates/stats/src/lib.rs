//! # stats — measurement toolkit for the buffer-sizing experiments
//!
//! Pure-Rust statistics used by the *Sizing Router Buffers* reproduction:
//!
//! * [`Welford`] — streaming mean/variance (numerically stable), used for
//!   utilization and window-sum summaries;
//! * [`Histogram`] — fixed-bin histograms with CDF export, used for the
//!   aggregate-window distribution of Figure 6 and queue distributions;
//! * [`TimeSeries`] — `(t, value)` series with time-weighted averaging and
//!   downsampling for the Figure 3–5 plots;
//! * [`gaussian`] — `erf`/`Φ`/`Φ⁻¹` and a normal fit with a goodness-of-fit
//!   measure (Figure 6 compares the window-sum distribution to a normal);
//! * [`mod@quantile`] — exact small-sample quantiles;
//! * [`fct`] — flow-completion-time aggregation (AFCT, per-size breakdowns)
//!   for Figures 8 and 9.


#![warn(missing_docs)]
pub mod fct;
pub mod gaussian;
pub mod histogram;
pub mod quantile;
pub mod summary;
pub mod timeseries;
pub mod welford;

pub use fct::FctCollector;
pub use gaussian::{ks_statistic, normal_cdf, normal_pdf, normal_quantile, GaussianFit};
pub use histogram::Histogram;
pub use quantile::quantile;
pub use summary::SeriesSummary;
pub use timeseries::TimeSeries;
pub use welford::Welford;
