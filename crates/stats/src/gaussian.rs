//! The normal distribution: `erf`, CDF `Φ`, quantile `Φ⁻¹`, and a
//! moment-based Gaussian fit with goodness-of-fit.
//!
//! These are the analytic ingredients of the paper's long-flow model (§3):
//! the aggregate congestion window converges to a Gaussian, and the buffer
//! must cover enough of its left tail to keep the link busy.

/// Error function, Abramowitz & Stegun 7.1.26 (|error| ≤ 1.5e-7 — far more
/// precision than any of the experiments resolve).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// A Gaussian fitted to data by the method of moments, with an L1
/// goodness-of-fit against a histogram.
#[derive(Clone, Copy, Debug)]
pub struct GaussianFit {
    /// Fitted mean.
    pub mean: f64,
    /// Fitted standard deviation.
    pub std: f64,
}

impl GaussianFit {
    /// Fits mean and standard deviation to the samples (population std).
    /// Returns `None` for fewer than 2 samples.
    pub fn fit(samples: &[f64]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Some(GaussianFit {
            mean,
            std: var.sqrt(),
        })
    }

    /// The fitted density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        normal_pdf((x - self.mean) / self.std) / self.std
    }

    /// The fitted CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        normal_cdf((x - self.mean) / self.std)
    }

    /// Total-variation-style distance between the fitted density and a
    /// histogram of the data: `½ Σ |p_emp(bin) − p_fit(bin)|`. 0 = perfect,
    /// 1 = disjoint. Figure 6's "looks Gaussian" claim is checked with this.
    pub fn histogram_distance(&self, hist: &crate::histogram::Histogram) -> f64 {
        let mut dist = 0.0;
        for i in 0..hist.nbins() {
            let c = hist.bin_center(i);
            let emp = hist.density(i) * hist.bin_width();
            let fit = self.pdf(c) * hist.bin_width();
            dist += (emp - fit).abs();
        }
        dist / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!(erf(5.0) > 0.999_999);
    }

    #[test]
    fn cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_75).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.024_997_9).abs() < 1e-5);
        assert!((normal_cdf(2.326_35) - 0.99).abs() < 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn fit_recovers_moments() {
        let xs: Vec<f64> = (0..10_000)
            .map(|i| {
                // Deterministic pseudo-normal via sum of uniforms (CLT).
                let mut s = 0.0;
                let mut v = i as u64 * 2_654_435_761 + 1;
                for _ in 0..12 {
                    v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    s += (v >> 11) as f64 / (1u64 << 53) as f64;
                }
                10.0 + 3.0 * (s - 6.0) // mean 10, std 3
            })
            .collect();
        let fit = GaussianFit::fit(&xs).unwrap();
        assert!((fit.mean - 10.0).abs() < 0.15, "mean = {}", fit.mean);
        assert!((fit.std - 3.0).abs() < 0.15, "std = {}", fit.std);
        // The CLT data should look very Gaussian.
        let mut h = Histogram::new(fit.mean - 5.0 * fit.std, fit.mean + 5.0 * fit.std, 50);
        for &x in &xs {
            h.add(x);
        }
        let d = fit.histogram_distance(&h);
        assert!(d < 0.05, "distance = {d}");
    }

    #[test]
    fn fit_rejects_tiny_samples() {
        assert!(GaussianFit::fit(&[]).is_none());
        assert!(GaussianFit::fit(&[1.0]).is_none());
    }

    #[test]
    fn uniform_data_fits_poorly() {
        // A uniform distribution is distinguishably non-Gaussian.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let fit = GaussianFit::fit(&xs).unwrap();
        let mut h = Histogram::new(-0.5, 1.5, 50);
        for &x in &xs {
            h.add(x);
        }
        let d = fit.histogram_distance(&h);
        assert!(d > 0.05, "distance = {d}");
    }

    #[test]
    fn pdf_cdf_degenerate_std() {
        let g = GaussianFit { mean: 1.0, std: 0.0 };
        assert_eq!(g.cdf(0.9), 0.0);
        assert_eq!(g.cdf(1.1), 1.0);
        assert_eq!(g.pdf(0.9), 0.0);
    }
}

/// Kolmogorov–Smirnov statistic between a sample set and the fitted
/// Gaussian: `sup_x |F_emp(x) − Φ((x−μ)/σ)|`. A sharper complement to
/// [`GaussianFit::histogram_distance`] for the Figure 6 "is it Gaussian?"
/// question; for a good fit of N samples, values around `1.36/√N`
/// correspond to the 5% significance level.
pub fn ks_statistic(samples: &[f64], fit: &GaussianFit) -> f64 {
    assert!(!samples.is_empty(), "KS of empty sample");
    let mut xs: Vec<f64> = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let cdf = fit.cdf(x);
        let emp_hi = (i as f64 + 1.0) / n;
        let emp_lo = i as f64 / n;
        d = d.max((cdf - emp_lo).abs()).max((emp_hi - cdf).abs());
    }
    d
}

#[cfg(test)]
mod ks_tests {
    use super::*;

    fn pseudo_normal(n: usize, mean: f64, std: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut s = 0.0;
                let mut v = i as u64 * 2_654_435_761 + 99;
                for _ in 0..12 {
                    v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    s += (v >> 11) as f64 / (1u64 << 53) as f64;
                }
                mean + std * (s - 6.0)
            })
            .collect()
    }

    #[test]
    fn ks_small_for_gaussian_data() {
        let xs = pseudo_normal(5_000, 0.0, 1.0);
        let fit = GaussianFit::fit(&xs).unwrap();
        let d = ks_statistic(&xs, &fit);
        assert!(d < 0.03, "d = {d}");
    }

    #[test]
    fn ks_large_for_uniform_data() {
        let xs: Vec<f64> = (0..5_000).map(|i| i as f64 / 5_000.0).collect();
        let fit = GaussianFit::fit(&xs).unwrap();
        let d = ks_statistic(&xs, &fit);
        assert!(d > 0.04, "d = {d}");
    }

    #[test]
    fn ks_bounded() {
        let xs = pseudo_normal(100, 5.0, 2.0);
        let fit = GaussianFit { mean: 1000.0, std: 0.1 };
        let d = ks_statistic(&xs, &fit);
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.9, "totally wrong fit should max out: {d}");
    }
}
