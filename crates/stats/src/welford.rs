//! Streaming mean/variance (Welford's algorithm).

/// Numerically stable online mean and variance.
///
/// # Example
/// ```
/// use stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] {
///     w.add(x);
/// }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.sample_variance(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n−1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (NaN-free; +∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.mean += delta * other.n as f64 / n;
        self.m2 = m2;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn sample_variance_bessel() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0] {
            w.add(x);
        }
        assert!((w.sample_variance() - 1.0).abs() < 1e-12);
        assert!((w.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Welford::new();
        a.add(1.0);
        let b = Welford::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn numerical_stability_large_offset() {
        let mut w = Welford::new();
        for i in 0..1000 {
            w.add(1e9 + (i % 2) as f64);
        }
        assert!((w.variance() - 0.25).abs() < 1e-6);
    }
}
