//! Fixed-bin histograms with PDF/CDF export.

/// A histogram over `[lo, hi)` with uniform bins. Out-of-range samples are
/// counted in saturating edge bins so nothing is silently lost.
///
/// # Example
/// ```
/// use stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [1.5, 2.5, 2.6, 11.0] {
///     h.add(x);
/// }
/// assert_eq!(h.bin_count(2), 2); // the 2.x samples
/// assert_eq!(h.overflow(), 1);   // 11.0 out of range, still counted
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` uniform bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(lo < hi, "empty range");
        assert!(nbins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Raw count of bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Probability *density* of bin `i` (count / total / width), so the
    /// result integrates to ≤ 1 and compares directly with an analytic pdf.
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bins[i] as f64 / self.total as f64 / self.bin_width()
    }

    /// Empirical `P(X > x)` (complementary CDF), counting under/overflow.
    pub fn ccdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut above = self.overflow;
        for i in 0..self.bins.len() {
            if self.lo + i as f64 * self.bin_width() >= x {
                above += self.bins[i];
            }
        }
        above as f64 / self.total as f64
    }

    /// Empirical mean estimated from bin centers (plus nothing for
    /// saturated samples — keep the range wide enough).
    pub fn approx_mean(&self) -> f64 {
        let inside: u64 = self.bins.iter().sum();
        if inside == 0 {
            return 0.0;
        }
        let s: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * self.bin_center(i))
            .sum();
        s / inside as f64
    }

    /// Iterates `(bin_center, density)` pairs.
    pub fn densities(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        (0..self.bins.len()).map(move |i| (self.bin_center(i), self.density(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 1, "bin {i}");
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.bin_width(), 1.0);
        assert_eq!(h.bin_center(0), 0.5);
    }

    #[test]
    fn edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1); // underflow
        h.add(0.0); // first bin
        h.add(1.0); // overflow (hi is exclusive)
        h.add(0.999999); // last bin
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(3), 1);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        for i in 0..1000 {
            h.add((i as f64 + 0.5) / 1000.0);
        }
        let integral: f64 = (0..h.nbins()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ccdf_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.add(i as f64);
        }
        assert!((h.ccdf(0.0) - 1.0).abs() < 1e-9);
        assert!((h.ccdf(50.0) - 0.5).abs() < 1e-9);
        assert_eq!(h.ccdf(100.0), 0.0);
        let mut prev = 1.1;
        for x in [0.0, 10.0, 25.0, 60.0, 99.0] {
            let v = h.ccdf(x);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn approx_mean_close() {
        let mut h = Histogram::new(0.0, 10.0, 1000);
        for i in 0..10_000 {
            h.add((i % 10) as f64 + 0.5);
        }
        assert!((h.approx_mean() - 5.0).abs() < 0.01);
    }

    #[test]
    fn empty_histogram_safe() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.ccdf(0.5), 0.0);
        assert_eq!(h.density(0), 0.0);
        assert_eq!(h.approx_mean(), 0.0);
    }
}
