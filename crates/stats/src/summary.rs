//! Percentile summaries of sampled series.
//!
//! [`SeriesSummary`] condenses a telemetry time series (queue occupancy,
//! per-interval utilization, cwnd) into the handful of numbers the results
//! report prints: count, min/mean/max and the 50th/90th/99th percentiles.
//! Percentiles use the same type-7 estimator as [`crate::quantile()`], and a
//! summary can also be binned through [`crate::Histogram`] for distribution
//! checks.

use crate::quantile::quantile;
use crate::welford::Welford;

/// Summary statistics of one series of samples.
///
/// # Example
/// ```
/// use stats::SeriesSummary;
///
/// let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
/// let s = SeriesSummary::from_samples(&samples).unwrap();
/// assert_eq!(s.count, 100);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 100.0);
/// assert!((s.mean - 50.5).abs() < 1e-9);
/// assert!((s.p50 - 50.5).abs() < 1e-9);
/// assert!(s.p99 > 98.0 && s.p99 <= 100.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesSummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (type-7 quantile estimate).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl SeriesSummary {
    /// Summarizes `samples`; returns `None` for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut w = Welford::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            w.add(x);
            min = min.min(x);
            max = max.max(x);
        }
        Some(SeriesSummary {
            count: samples.len(),
            min,
            max,
            mean: w.mean(),
            p50: quantile(samples, 0.50).expect("non-empty"),
            p90: quantile(samples, 0.90).expect("non-empty"),
            p99: quantile(samples, 0.99).expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gives_none() {
        assert!(SeriesSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample_is_degenerate() {
        let s = SeriesSummary::from_samples(&[3.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.p50, 3.5);
        assert_eq!(s.p99, 3.5);
    }

    #[test]
    fn percentiles_are_ordered() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let s = SeriesSummary::from_samples(&xs).unwrap();
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!(s.mean > s.min && s.mean < s.max);
    }

    #[test]
    fn order_independent() {
        let a = SeriesSummary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = SeriesSummary::from_samples(&[4.0, 2.0, 1.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }
}
