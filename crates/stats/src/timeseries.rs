//! Time series helpers: time-weighted means and plot-friendly downsampling.

use simcore::trace::TracePoint;
use simcore::SimTime;

/// A `(time, value)` series with analysis helpers.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<TracePoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a series from trace points (e.g. a `TraceSink` series).
    pub fn from_points(points: &[TracePoint]) -> Self {
        let mut s = TimeSeries {
            points: points.to_vec(),
        };
        s.points.sort_by_key(|p| p.time);
        s
    }

    /// Appends a point; times must be non-decreasing.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.points.last() {
            assert!(time >= last.time, "time series must be monotone");
        }
        self.points.push(TracePoint { time, value });
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw points.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Restricts to points with `time >= t0` (drop a warm-up).
    pub fn after(&self, t0: SimTime) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .iter()
                .copied()
                .filter(|p| p.time >= t0)
                .collect(),
        }
    }

    /// Sample mean of the values (unweighted).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
    }

    /// Time-weighted mean, treating the series as a step function that holds
    /// each value until the next sample.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.mean();
        }
        let mut area = 0.0;
        let mut dur = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].time.since(w[0].time).as_secs_f64();
            area += w[0].value * dt;
            dur += dt;
        }
        if dur == 0.0 {
            self.mean()
        } else {
            area / dur
        }
    }

    /// Minimum value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.value)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.value)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Downsamples to at most `n` points by keeping every k-th point (plus
    /// the last), for plotting.
    pub fn downsample(&self, n: usize) -> TimeSeries {
        assert!(n > 0);
        if self.points.len() <= n {
            return self.clone();
        }
        let k = self.points.len().div_ceil(n);
        let mut points: Vec<TracePoint> = self.points.iter().copied().step_by(k).collect();
        if points.last().map(|p| p.time) != self.points.last().map(|p| p.time) {
            points.push(*self.points.last().unwrap());
        }
        TimeSeries { points }
    }

    /// Fraction of points with value ≤ `threshold` (e.g. "how often was the
    /// queue empty").
    pub fn fraction_at_or_below(&self, threshold: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.value <= threshold).count() as f64
            / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn push_and_stats() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(10), 3.0);
        s.push(t(20), 5.0);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.min(), 1.0);
    }

    #[test]
    fn time_weighted_mean_step_function() {
        let mut s = TimeSeries::new();
        // Holds 0 for 10 ms, then 10 for 90 ms.
        s.push(t(0), 0.0);
        s.push(t(10), 10.0);
        s.push(t(100), 10.0);
        // (0*10 + 10*90) / 100 = 9.
        assert!((s.time_weighted_mean() - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_monotone_push_panics() {
        let mut s = TimeSeries::new();
        s.push(t(10), 0.0);
        s.push(t(5), 0.0);
    }

    #[test]
    fn after_drops_warmup() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i * 10), i as f64);
        }
        let tail = s.after(t(50));
        assert_eq!(tail.len(), 5);
        assert_eq!(tail.points()[0].value, 5.0);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = TimeSeries::new();
        for i in 0..1000 {
            s.push(t(i), i as f64);
        }
        let d = s.downsample(100);
        assert!(d.len() <= 101);
        assert_eq!(d.points()[0].time, t(0));
        assert_eq!(d.points().last().unwrap().time, t(999));
    }

    #[test]
    fn fraction_at_or_below() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i), i as f64);
        }
        assert!((s.fraction_at_or_below(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction_at_or_below(-1.0), 0.0);
        assert_eq!(s.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn empty_series_safe() {
        let s = TimeSeries::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.time_weighted_mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.fraction_at_or_below(0.0), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn from_points_sorts() {
        let pts = vec![
            TracePoint {
                time: t(10),
                value: 1.0,
            },
            TracePoint {
                time: t(5),
                value: 2.0,
            },
        ];
        let s = TimeSeries::from_points(&pts);
        assert_eq!(s.points()[0].time, t(5));
    }
}

impl TimeSeries {
    /// Sample autocorrelation of the values at integer lags `0..=max_lag`
    /// (index-based, so sample the series at a fixed period first).
    pub fn autocorrelation(&self, max_lag: usize) -> Vec<f64> {
        let xs: Vec<f64> = self.points.iter().map(|p| p.value).collect();
        autocorrelation(&xs, max_lag)
    }

    /// Estimates the dominant period of an (approximately) periodic series,
    /// in samples: the lag of the first local maximum of the
    /// autocorrelation after its first zero crossing. Returns `None` when
    /// no periodicity is detectable (monotone ACF or too little data).
    pub fn dominant_period(&self, max_lag: usize) -> Option<usize> {
        let acf = self.autocorrelation(max_lag);
        // First zero crossing.
        let zero = acf.iter().position(|&r| r <= 0.0)?;
        // First local max after it.
        let mut best = None;
        let mut best_v = 0.0;
        for lag in zero + 1..acf.len().saturating_sub(1) {
            if acf[lag] >= acf[lag - 1] && acf[lag] >= acf[lag + 1] && acf[lag] > best_v {
                best = Some(lag);
                best_v = acf[lag];
            }
        }
        best
    }
}

/// Sample autocorrelation function of `xs` at lags `0..=max_lag`
/// (biased estimator, normalised so `acf[0] = 1`).
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(n >= 2, "need at least two samples");
    let max_lag = max_lag.min(n - 1);
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var == 0.0 {
        // A constant series is perfectly correlated with itself.
        return vec![1.0; max_lag + 1];
    }
    (0..=max_lag)
        .map(|lag| {
            let cov: f64 = (0..n - lag)
                .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
                .sum::<f64>()
                / n as f64;
            cov / var
        })
        .collect()
}

#[cfg(test)]
mod autocorrelation_tests {
    use super::*;

    #[test]
    fn acf_of_sine_peaks_at_period() {
        let period = 40usize;
        let xs: Vec<f64> = (0..400)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let acf = autocorrelation(&xs, 100);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        // The biased estimator shrinks by (n - lag)/n, so expect ~0.9.
        assert!(acf[period] > 0.85, "acf at period = {}", acf[period]);
        assert!(acf[period / 2] < -0.75, "acf at half period = {}", acf[period / 2]);
    }

    #[test]
    fn dominant_period_of_sawtooth() {
        let period = 50usize;
        let mut s = TimeSeries::new();
        for i in 0..500 {
            let phase = (i % period) as f64 / period as f64;
            s.push(SimTime::from_millis(i as u64), 1.0 + phase);
        }
        let est = s.dominant_period(150).expect("periodic");
        assert!(
            (est as i64 - period as i64).abs() <= 2,
            "estimated {est} vs true {period}"
        );
    }

    #[test]
    fn constant_series_acf_is_one() {
        let acf = autocorrelation(&[5.0; 10], 3);
        assert_eq!(acf, vec![1.0; 4]);
    }

    #[test]
    fn white_noise_has_no_period() {
        let mut rng = simcore::Rng::new(9);
        let mut s = TimeSeries::new();
        for i in 0..300 {
            s.push(SimTime::from_millis(i), rng.f64());
        }
        // ACF decays immediately; any "period" found must have weak
        // correlation.
        let acf = s.autocorrelation(50);
        for &r in &acf[1..] {
            assert!(r.abs() < 0.25, "noise acf too strong: {r}");
        }
    }
}
